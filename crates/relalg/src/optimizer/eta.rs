//! η hash-sampling pushdown as an optimizer rule — the Definition 3
//! rewrite of the paper, with the Section 4.3/4.4 legality conditions.
//!
//! `η_{a,m}` is semantically a selection on a deterministic predicate of the
//! key columns `a`, so it commutes with σ, ∪, ∩, −, with Π when the key
//! survives as bare columns, and with γ when the key is part of the group-by
//! clause. Joins block push-down in general; the two special cases of
//! Section 4.4 are implemented:
//!
//! * **Equality join**: if every hash-key column is part of the equality
//!   condition, matched rows carry equal values on both sides, so the same
//!   hash decision can be enforced on both inputs (`Inner` joins; also the
//!   internal `Semi`/`Anti` joins used by maintenance plans).
//! * **Foreign-key join**: if the hash key lives entirely on one side, the
//!   filter commutes to that side (`Inner`/`Left` for the left side,
//!   `Inner`/`Right` for the right side). The classic FK pattern — fact
//!   table sampled on its key while the dimension is joined on its whole
//!   primary key — is an instance of this rule.
//!
//! Adjacent η nodes over the *same* key and hash spec compose:
//! `η_{a,m1} ∘ η_{a,m2} = η_{a,min(m1,m2)}` because both filters test the
//! identical hash value against their ratio. Stacked hashes with different
//! keys or specs rest on top of each other (swapping them would ping-pong).
//!
//! Every spot where the rewrite must stop is recorded as a *blocker*; nested
//! group-by aggregates (NP-hard in general, Appendix 12.4) and
//! key-transforming projections (the paper's V21/V22) surface here.
//!
//! Schema/key information comes from one bottom-up [`derive_tree`] pass per
//! sweep; the rewrite carries each subtree's [`DerivedTree`] alongside the
//! plan (η moves never change any node's schema or key, only the tree
//! shape), so no subtree is ever re-derived — optimizing deep plans is
//! O(nodes) derive work per sweep instead of O(nodes²).
//!
//! Theorem 1 — the rewritten plan materializes the *identical* sample — is
//! exercised by this module's callers: `svc_sampling::pushdown` (a thin
//! wrapper kept for the legacy API) and the workspace-level property tests.

use svc_storage::{HashSpec, Result};

use crate::derive::{derive_tree, DerivedTree, LeafProvider, SetOpKind};
use crate::plan::{JoinKind, Plan};

/// What the η rule did: how far hashes moved and where they stopped.
#[derive(Debug, Clone, Default)]
pub struct EtaReport {
    /// Number of operators the hash was pushed through (η∘η compositions
    /// count once — a node was eliminated).
    pub descended: usize,
    /// Human-readable reasons the push stopped somewhere above a leaf.
    pub blockers: Vec<String>,
    /// Leaf relations that ended up with a hash directly above them; only
    /// these are eligible carriers for outlier indexes (Section 6.2).
    pub sampled_leaves: Vec<String>,
}

impl EtaReport {
    /// True iff every hash reached the leaves unimpeded.
    pub fn fully_pushed(&self) -> bool {
        self.blockers.is_empty()
    }
}

/// Rewrite `plan`, pushing every η node as deep as Definition 3 allows.
pub fn pushdown(plan: Plan, leaves: &dyn LeafProvider, report: &mut EtaReport) -> Result<Plan> {
    let tree = derive_tree(&plan, leaves)?;
    Ok(rewrite(plan, tree, report)?.0)
}

/// Split a unary node's tree into its own derived type and its child's tree.
fn take_unary(dt: DerivedTree) -> (crate::derive::Derived, DerivedTree) {
    let DerivedTree { derived, mut children } = dt;
    (derived, children.pop().expect("unary node has one child"))
}

/// Split a binary node's tree into its own derived type and both children.
fn take_binary(dt: DerivedTree) -> (crate::derive::Derived, DerivedTree, DerivedTree) {
    let DerivedTree { derived, mut children } = dt;
    let right = children.pop().expect("binary node has two children");
    let left = children.pop().expect("binary node has two children");
    (derived, left, right)
}

fn rewrite(plan: Plan, dt: DerivedTree, report: &mut EtaReport) -> Result<(Plan, DerivedTree)> {
    Ok(match plan {
        Plan::Hash { input, key, ratio, spec } => {
            let (_, input_dt) = take_unary(dt);
            let (inner, inner_dt) = rewrite(*input, input_dt, report)?;
            push(key, ratio, spec, inner, inner_dt, report)?
        }
        Plan::Scan { .. } => (plan, dt),
        Plan::Select { input, predicate } => {
            let (d, input_dt) = take_unary(dt);
            let (inner, inner_dt) = rewrite(*input, input_dt, report)?;
            (Plan::Select { input: Box::new(inner), predicate }, DerivedTree::unary(d, inner_dt))
        }
        Plan::Project { input, columns } => {
            let (d, input_dt) = take_unary(dt);
            let (inner, inner_dt) = rewrite(*input, input_dt, report)?;
            (Plan::Project { input: Box::new(inner), columns }, DerivedTree::unary(d, inner_dt))
        }
        Plan::Aggregate { input, group_by, aggregates } => {
            let (d, input_dt) = take_unary(dt);
            let (inner, inner_dt) = rewrite(*input, input_dt, report)?;
            (
                Plan::Aggregate { input: Box::new(inner), group_by, aggregates },
                DerivedTree::unary(d, inner_dt),
            )
        }
        Plan::Join { left, right, kind, on } => {
            let (d, l_dt, r_dt) = take_binary(dt);
            let (l, l_dt) = rewrite(*left, l_dt, report)?;
            let (r, r_dt) = rewrite(*right, r_dt, report)?;
            (
                Plan::Join { left: Box::new(l), right: Box::new(r), kind, on },
                DerivedTree::binary(d, l_dt, r_dt),
            )
        }
        Plan::Union { left, right } => {
            let (d, l_dt, r_dt) = take_binary(dt);
            let (l, l_dt) = rewrite(*left, l_dt, report)?;
            let (r, r_dt) = rewrite(*right, r_dt, report)?;
            (
                Plan::Union { left: Box::new(l), right: Box::new(r) },
                DerivedTree::binary(d, l_dt, r_dt),
            )
        }
        Plan::Intersect { left, right } => {
            let (d, l_dt, r_dt) = take_binary(dt);
            let (l, l_dt) = rewrite(*left, l_dt, report)?;
            let (r, r_dt) = rewrite(*right, r_dt, report)?;
            (
                Plan::Intersect { left: Box::new(l), right: Box::new(r) },
                DerivedTree::binary(d, l_dt, r_dt),
            )
        }
        Plan::Difference { left, right } => {
            let (d, l_dt, r_dt) = take_binary(dt);
            let (l, l_dt) = rewrite(*left, l_dt, report)?;
            let (r, r_dt) = rewrite(*right, r_dt, report)?;
            (
                Plan::Difference { left: Box::new(l), right: Box::new(r) },
                DerivedTree::binary(d, l_dt, r_dt),
            )
        }
    })
}

/// Push one hash (with `key`/`ratio`/`spec`) into `input`, which has already
/// been rewritten; `input_dt` is its derived tree.
fn push(
    key: Vec<String>,
    ratio: f64,
    spec: HashSpec,
    input: Plan,
    input_dt: DerivedTree,
    report: &mut EtaReport,
) -> Result<(Plan, DerivedTree)> {
    match input {
        Plan::Scan { ref table } => {
            report.sampled_leaves.push(table.clone());
            let d = input_dt.derived.clone();
            Ok((
                Plan::Hash { input: Box::new(input), key, ratio, spec },
                DerivedTree::unary(d, input_dt),
            ))
        }
        Plan::Select { input: inner, predicate } => {
            report.descended += 1;
            let (d, inner_dt) = take_unary(input_dt);
            let (pushed, pushed_dt) = push(key, ratio, spec, *inner, inner_dt, report)?;
            Ok((
                Plan::Select { input: Box::new(pushed), predicate },
                DerivedTree::unary(d, pushed_dt),
            ))
        }
        Plan::Hash { input: inner, key: inner_key, ratio: inner_ratio, spec: inner_spec } => {
            if inner_key == key && inner_spec == spec {
                // η∘η with one shared (key, spec): both filters test the same
                // hash value, so they compose to the tighter ratio. Count the
                // eliminated node as a descent so the engine sees a change.
                report.descended += 1;
                let (_, inner_dt) = take_unary(input_dt);
                push(key, ratio.min(inner_ratio), spec, *inner, inner_dt, report)
            } else {
                // Different key or spec: "pushing through" would only swap
                // the two filters — and swap them back on the next sweep, so
                // the engine would never reach a fixed point. The inner hash
                // has already been pushed as deep as legality allows (this
                // function rewrites bottom-up), so the outer one rests
                // directly above it.
                let d = input_dt.derived.clone();
                let rebuilt = Plan::Hash {
                    input: inner,
                    key: inner_key,
                    ratio: inner_ratio,
                    spec: inner_spec,
                };
                Ok((
                    Plan::Hash { input: Box::new(rebuilt), key, ratio, spec },
                    DerivedTree::unary(d, input_dt),
                ))
            }
        }
        Plan::Project { input: inner, columns } => {
            // Each key column must be a bare column reference in the
            // projection; map output names back to input names.
            let out_schema = &input_dt.derived.schema;
            let mut mapped = Vec::with_capacity(key.len());
            let mut ok = true;
            for k in &key {
                match out_schema.resolve(k).ok().and_then(|p| columns[p].1.as_col()) {
                    Some(src) => mapped.push(src.to_string()),
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                report.descended += 1;
                let (d, inner_dt) = take_unary(input_dt);
                let (pushed, pushed_dt) = push(mapped, ratio, spec, *inner, inner_dt, report)?;
                Ok((
                    Plan::Project { input: Box::new(pushed), columns },
                    DerivedTree::unary(d, pushed_dt),
                ))
            } else {
                report.blockers.push(format!(
                    "projection transforms hash key ({}); η stays above Π",
                    key.join(",")
                ));
                let d = input_dt.derived.clone();
                Ok((
                    Plan::Hash {
                        input: Box::new(Plan::Project { input: inner, columns }),
                        key,
                        ratio,
                        spec,
                    },
                    DerivedTree::unary(d, input_dt),
                ))
            }
        }
        Plan::Aggregate { input: inner, group_by, aggregates } => {
            let out_schema = &input_dt.derived.schema;
            let mut mapped = Vec::with_capacity(key.len());
            let mut ok = true;
            for k in &key {
                match out_schema.resolve(k).ok().filter(|&p| p < group_by.len()) {
                    Some(p) => mapped.push(group_by[p].clone()),
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                report.descended += 1;
                let (d, inner_dt) = take_unary(input_dt);
                let (pushed, pushed_dt) = push(mapped, ratio, spec, *inner, inner_dt, report)?;
                Ok((
                    Plan::Aggregate { input: Box::new(pushed), group_by, aggregates },
                    DerivedTree::unary(d, pushed_dt),
                ))
            } else {
                report.blockers.push(format!(
                    "hash key ({}) is not contained in the group-by clause ({}); η stays \
                     above γ (nested-aggregate blocker, Appendix 12.4)",
                    key.join(","),
                    group_by.join(",")
                ));
                let d = input_dt.derived.clone();
                Ok((
                    Plan::Hash {
                        input: Box::new(Plan::Aggregate { input: inner, group_by, aggregates }),
                        key,
                        ratio,
                        spec,
                    },
                    DerivedTree::unary(d, input_dt),
                ))
            }
        }
        Plan::Join { left, right, kind, on } => {
            push_join(key, ratio, spec, *left, *right, kind, on, input_dt, report)
        }
        Plan::Union { left, right } => {
            push_setop(key, ratio, spec, *left, *right, SetOpKind::Union, input_dt, report)
        }
        Plan::Intersect { left, right } => {
            push_setop(key, ratio, spec, *left, *right, SetOpKind::Intersect, input_dt, report)
        }
        Plan::Difference { left, right } => {
            push_setop(key, ratio, spec, *left, *right, SetOpKind::Difference, input_dt, report)
        }
    }
}

/// ∪/∩/− are positional: map key names through the left schema's positions
/// onto the right schema's names and push into both branches.
#[allow(clippy::too_many_arguments)]
fn push_setop(
    key: Vec<String>,
    ratio: f64,
    spec: HashSpec,
    left: Plan,
    right: Plan,
    op: SetOpKind,
    dt: DerivedTree,
    report: &mut EtaReport,
) -> Result<(Plan, DerivedTree)> {
    let (d, l_dt, r_dt) = take_binary(dt);
    let l_schema = &l_dt.derived.schema;
    let r_schema = &r_dt.derived.schema;
    let mut right_key = Vec::with_capacity(key.len());
    for k in &key {
        let p = l_schema.resolve(k)?;
        right_key.push(r_schema.field(p).name.clone());
    }
    report.descended += 1;
    let (l, l_dt) = push(key, ratio, spec, left, l_dt, report)?;
    let (r, r_dt) = push(right_key, ratio, spec, right, r_dt, report)?;
    Ok((op.rebuild(l, r), DerivedTree::binary(d, l_dt, r_dt)))
}

#[allow(clippy::too_many_arguments)]
fn push_join(
    key: Vec<String>,
    ratio: f64,
    spec: HashSpec,
    left: Plan,
    right: Plan,
    kind: JoinKind,
    on: Vec<(String, String)>,
    dt: DerivedTree,
    report: &mut EtaReport,
) -> Result<(Plan, DerivedTree)> {
    let (d, l_dt, r_dt) = take_binary(dt);
    let l_d = &l_dt.derived;
    let r_d = &r_dt.derived;
    let out_schema = &d.schema;

    let l_arity = l_d.schema.len();
    // Classify each key column: Some(Left(name)) / Some(Right(name)) by the
    // side it lives on in the join output.
    enum Side {
        Left(String),
        Right(String),
    }
    let mut sides = Vec::with_capacity(key.len());
    for k in &key {
        let p = out_schema.resolve(k)?;
        // Semi/Anti joins expose only the left schema, so p is a left position.
        if p < l_arity {
            sides.push(Side::Left(l_d.schema.field(p).name.clone()));
        } else {
            sides.push(Side::Right(r_d.schema.field(p - l_arity).name.clone()));
        }
    }

    let partner_right = |lname: &str| -> Option<String> {
        let li = l_d.schema.resolve(lname).ok()?;
        on.iter().find(|(l, _)| l_d.schema.resolve(l).ok() == Some(li)).map(|(_, r)| r.clone())
    };
    let partner_left = |rname: &str| -> Option<String> {
        let ri = r_d.schema.resolve(rname).ok()?;
        on.iter().find(|(_, r)| r_d.schema.resolve(r).ok() == Some(ri)).map(|(l, _)| l.clone())
    };

    // Case 1 — equality join: every key column participates in the join
    // condition, so the hash can be enforced on both inputs.
    let equality_eligible = matches!(kind, JoinKind::Inner | JoinKind::Semi | JoinKind::Anti);
    if equality_eligible {
        let mut lk = Vec::with_capacity(key.len());
        let mut rk = Vec::with_capacity(key.len());
        let mut all = true;
        for side in &sides {
            match side {
                Side::Left(name) => match partner_right(name) {
                    Some(r) => {
                        lk.push(name.clone());
                        rk.push(r);
                    }
                    None => {
                        all = false;
                        break;
                    }
                },
                Side::Right(name) => match partner_left(name) {
                    Some(l) => {
                        lk.push(l);
                        rk.push(name.clone());
                    }
                    None => {
                        all = false;
                        break;
                    }
                },
            }
        }
        if all {
            report.descended += 1;
            let (l, l_dt) = push(lk, ratio, spec, left, l_dt, report)?;
            let (r, r_dt) = push(rk, ratio, spec, right, r_dt, report)?;
            return Ok((
                Plan::Join { left: Box::new(l), right: Box::new(r), kind, on },
                DerivedTree::binary(d, l_dt, r_dt),
            ));
        }
    }

    // Case 2 — one-sided push (the FK-join case and its generalization):
    // the filter commutes to the side holding all key columns, provided the
    // join kind cannot fabricate NULLs for that side.
    let all_left = sides.iter().all(|s| matches!(s, Side::Left(_)));
    let all_right = sides.iter().all(|s| matches!(s, Side::Right(_)));
    if all_left
        && matches!(kind, JoinKind::Inner | JoinKind::Left | JoinKind::Semi | JoinKind::Anti)
    {
        let lk: Vec<String> = sides
            .iter()
            .map(|s| match s {
                Side::Left(n) => n.clone(),
                Side::Right(_) => unreachable!(),
            })
            .collect();
        report.descended += 1;
        let (l, l_dt) = push(lk, ratio, spec, left, l_dt, report)?;
        return Ok((
            Plan::Join { left: Box::new(l), right: Box::new(right), kind, on },
            DerivedTree::binary(d, l_dt, r_dt),
        ));
    }
    if all_right && matches!(kind, JoinKind::Inner | JoinKind::Right) {
        let rk: Vec<String> = sides
            .iter()
            .map(|s| match s {
                Side::Right(n) => n.clone(),
                Side::Left(_) => unreachable!(),
            })
            .collect();
        report.descended += 1;
        let (r, r_dt) = push(rk, ratio, spec, right, r_dt, report)?;
        return Ok((
            Plan::Join { left: Box::new(left), right: Box::new(r), kind, on },
            DerivedTree::binary(d, l_dt, r_dt),
        ));
    }

    report.blockers.push(format!(
        "join blocks η on key ({}): key spans both inputs and is not covered by the \
         equality condition",
        key.join(",")
    ));
    let join = Plan::Join { left: Box::new(left), right: Box::new(right), kind, on };
    let join_dt = DerivedTree::binary(d.clone(), l_dt, r_dt);
    Ok((Plan::Hash { input: Box::new(join), key, ratio, spec }, DerivedTree::unary(d, join_dt)))
}
