//! η hash-sampling pushdown as an optimizer rule — the Definition 3
//! rewrite of the paper, with the Section 4.3/4.4 legality conditions.
//!
//! `η_{a,m}` is semantically a selection on a deterministic predicate of the
//! key columns `a`, so it commutes with σ, ∪, ∩, −, with Π when the key
//! survives as bare columns, and with γ when the key is part of the group-by
//! clause. Joins block push-down in general; the two special cases of
//! Section 4.4 are implemented:
//!
//! * **Equality join**: if every hash-key column is part of the equality
//!   condition, matched rows carry equal values on both sides, so the same
//!   hash decision can be enforced on both inputs (`Inner` joins; also the
//!   internal `Semi`/`Anti` joins used by maintenance plans).
//! * **Foreign-key join**: if the hash key lives entirely on one side, the
//!   filter commutes to that side (`Inner`/`Left` for the left side,
//!   `Inner`/`Right` for the right side). The classic FK pattern — fact
//!   table sampled on its key while the dimension is joined on its whole
//!   primary key — is an instance of this rule.
//!
//! Every spot where the rewrite must stop is recorded as a *blocker*; nested
//! group-by aggregates (NP-hard in general, Appendix 12.4) and
//! key-transforming projections (the paper's V21/V22) surface here.
//!
//! Theorem 1 — the rewritten plan materializes the *identical* sample — is
//! exercised by this module's callers: `svc_sampling::pushdown` (a thin
//! wrapper kept for the legacy API) and the workspace-level property tests.

use svc_storage::{HashSpec, Result};

use crate::derive::{derive, LeafProvider, SetOpKind};
use crate::plan::{JoinKind, Plan};

/// What the η rule did: how far hashes moved and where they stopped.
#[derive(Debug, Clone, Default)]
pub struct EtaReport {
    /// Number of operators the hash was pushed through.
    pub descended: usize,
    /// Human-readable reasons the push stopped somewhere above a leaf.
    pub blockers: Vec<String>,
    /// Leaf relations that ended up with a hash directly above them; only
    /// these are eligible carriers for outlier indexes (Section 6.2).
    pub sampled_leaves: Vec<String>,
}

impl EtaReport {
    /// True iff every hash reached the leaves unimpeded.
    pub fn fully_pushed(&self) -> bool {
        self.blockers.is_empty()
    }
}

/// Rewrite `plan`, pushing every η node as deep as Definition 3 allows.
pub fn pushdown(plan: Plan, leaves: &dyn LeafProvider, report: &mut EtaReport) -> Result<Plan> {
    rewrite(plan, leaves, report)
}

fn rewrite(plan: Plan, leaves: &dyn LeafProvider, report: &mut EtaReport) -> Result<Plan> {
    Ok(match plan {
        Plan::Hash { input, key, ratio, spec } => {
            let inner = rewrite(*input, leaves, report)?;
            push(key, ratio, spec, inner, leaves, report)?
        }
        Plan::Scan { .. } => plan,
        Plan::Select { input, predicate } => {
            Plan::Select { input: Box::new(rewrite(*input, leaves, report)?), predicate }
        }
        Plan::Project { input, columns } => {
            Plan::Project { input: Box::new(rewrite(*input, leaves, report)?), columns }
        }
        Plan::Join { left, right, kind, on } => Plan::Join {
            left: Box::new(rewrite(*left, leaves, report)?),
            right: Box::new(rewrite(*right, leaves, report)?),
            kind,
            on,
        },
        Plan::Aggregate { input, group_by, aggregates } => Plan::Aggregate {
            input: Box::new(rewrite(*input, leaves, report)?),
            group_by,
            aggregates,
        },
        Plan::Union { left, right } => Plan::Union {
            left: Box::new(rewrite(*left, leaves, report)?),
            right: Box::new(rewrite(*right, leaves, report)?),
        },
        Plan::Intersect { left, right } => Plan::Intersect {
            left: Box::new(rewrite(*left, leaves, report)?),
            right: Box::new(rewrite(*right, leaves, report)?),
        },
        Plan::Difference { left, right } => Plan::Difference {
            left: Box::new(rewrite(*left, leaves, report)?),
            right: Box::new(rewrite(*right, leaves, report)?),
        },
    })
}

/// Push one hash (with `key`/`ratio`/`spec`) into `input`, which has already
/// been rewritten.
fn push(
    key: Vec<String>,
    ratio: f64,
    spec: HashSpec,
    input: Plan,
    leaves: &dyn LeafProvider,
    report: &mut EtaReport,
) -> Result<Plan> {
    match input {
        Plan::Scan { ref table } => {
            report.sampled_leaves.push(table.clone());
            Ok(Plan::Hash { input: Box::new(input), key, ratio, spec })
        }
        Plan::Select { input: inner, predicate } => {
            report.descended += 1;
            Ok(Plan::Select {
                input: Box::new(push(key, ratio, spec, *inner, leaves, report)?),
                predicate,
            })
        }
        Plan::Hash { .. } => {
            // η commutes with η, but "pushing through" an adjacent hash
            // only swaps the two filters — and would swap them back on the
            // next sweep, so the engine would never reach a fixed point.
            // The inner hash has already been pushed as deep as legality
            // allows (this function rewrites bottom-up), so the outer one
            // rests directly above it.
            Ok(Plan::Hash { input: Box::new(input), key, ratio, spec })
        }
        Plan::Project { input: inner, columns } => {
            // Each key column must be a bare column reference in the
            // projection; map output names back to input names.
            let out_schema =
                derive(&Plan::Project { input: inner.clone(), columns: columns.clone() }, leaves)?
                    .schema;
            let mut mapped = Vec::with_capacity(key.len());
            let mut ok = true;
            for k in &key {
                match out_schema.resolve(k).ok().and_then(|p| columns[p].1.as_col()) {
                    Some(src) => mapped.push(src.to_string()),
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                report.descended += 1;
                Ok(Plan::Project {
                    input: Box::new(push(mapped, ratio, spec, *inner, leaves, report)?),
                    columns,
                })
            } else {
                report.blockers.push(format!(
                    "projection transforms hash key ({}); η stays above Π",
                    key.join(",")
                ));
                Ok(Plan::Hash {
                    input: Box::new(Plan::Project { input: inner, columns }),
                    key,
                    ratio,
                    spec,
                })
            }
        }
        Plan::Aggregate { input: inner, group_by, aggregates } => {
            let out_schema = derive(
                &Plan::Aggregate {
                    input: inner.clone(),
                    group_by: group_by.clone(),
                    aggregates: aggregates.clone(),
                },
                leaves,
            )?
            .schema;
            let mut mapped = Vec::with_capacity(key.len());
            let mut ok = true;
            for k in &key {
                match out_schema.resolve(k).ok().filter(|&p| p < group_by.len()) {
                    Some(p) => mapped.push(group_by[p].clone()),
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                report.descended += 1;
                Ok(Plan::Aggregate {
                    input: Box::new(push(mapped, ratio, spec, *inner, leaves, report)?),
                    group_by,
                    aggregates,
                })
            } else {
                report.blockers.push(format!(
                    "hash key ({}) is not contained in the group-by clause ({}); η stays \
                     above γ (nested-aggregate blocker, Appendix 12.4)",
                    key.join(","),
                    group_by.join(",")
                ));
                Ok(Plan::Hash {
                    input: Box::new(Plan::Aggregate { input: inner, group_by, aggregates }),
                    key,
                    ratio,
                    spec,
                })
            }
        }
        Plan::Join { left, right, kind, on } => {
            push_join(key, ratio, spec, *left, *right, kind, on, leaves, report)
        }
        Plan::Union { left, right } => {
            push_setop(key, ratio, spec, *left, *right, SetOpKind::Union, leaves, report)
        }
        Plan::Intersect { left, right } => {
            push_setop(key, ratio, spec, *left, *right, SetOpKind::Intersect, leaves, report)
        }
        Plan::Difference { left, right } => {
            push_setop(key, ratio, spec, *left, *right, SetOpKind::Difference, leaves, report)
        }
    }
}

/// ∪/∩/− are positional: map key names through the left schema's positions
/// onto the right schema's names and push into both branches.
#[allow(clippy::too_many_arguments)]
fn push_setop(
    key: Vec<String>,
    ratio: f64,
    spec: HashSpec,
    left: Plan,
    right: Plan,
    op: SetOpKind,
    leaves: &dyn LeafProvider,
    report: &mut EtaReport,
) -> Result<Plan> {
    let l_schema = derive(&left, leaves)?.schema;
    let r_schema = derive(&right, leaves)?.schema;
    let mut right_key = Vec::with_capacity(key.len());
    for k in &key {
        let p = l_schema.resolve(k)?;
        right_key.push(r_schema.field(p).name.clone());
    }
    report.descended += 1;
    let l = push(key, ratio, spec, left, leaves, report)?;
    let r = push(right_key, ratio, spec, right, leaves, report)?;
    Ok(op.rebuild(l, r))
}

#[allow(clippy::too_many_arguments)]
fn push_join(
    key: Vec<String>,
    ratio: f64,
    spec: HashSpec,
    left: Plan,
    right: Plan,
    kind: JoinKind,
    on: Vec<(String, String)>,
    leaves: &dyn LeafProvider,
    report: &mut EtaReport,
) -> Result<Plan> {
    let l_d = derive(&left, leaves)?;
    let r_d = derive(&right, leaves)?;
    let out_schema = derive(
        &Plan::Join {
            left: Box::new(left.clone()),
            right: Box::new(right.clone()),
            kind,
            on: on.clone(),
        },
        leaves,
    )?
    .schema;

    let l_arity = l_d.schema.len();
    // Classify each key column: Some(Left(name)) / Some(Right(name)) by the
    // side it lives on in the join output.
    enum Side {
        Left(String),
        Right(String),
    }
    let mut sides = Vec::with_capacity(key.len());
    for k in &key {
        let p = out_schema.resolve(k)?;
        // Semi/Anti joins expose only the left schema, so p is a left position.
        if p < l_arity {
            sides.push(Side::Left(l_d.schema.field(p).name.clone()));
        } else {
            sides.push(Side::Right(r_d.schema.field(p - l_arity).name.clone()));
        }
    }

    let partner_right = |lname: &str| -> Option<String> {
        let li = l_d.schema.resolve(lname).ok()?;
        on.iter().find(|(l, _)| l_d.schema.resolve(l).ok() == Some(li)).map(|(_, r)| r.clone())
    };
    let partner_left = |rname: &str| -> Option<String> {
        let ri = r_d.schema.resolve(rname).ok()?;
        on.iter().find(|(_, r)| r_d.schema.resolve(r).ok() == Some(ri)).map(|(l, _)| l.clone())
    };

    // Case 1 — equality join: every key column participates in the join
    // condition, so the hash can be enforced on both inputs.
    let equality_eligible = matches!(kind, JoinKind::Inner | JoinKind::Semi | JoinKind::Anti);
    if equality_eligible {
        let mut lk = Vec::with_capacity(key.len());
        let mut rk = Vec::with_capacity(key.len());
        let mut all = true;
        for side in &sides {
            match side {
                Side::Left(name) => match partner_right(name) {
                    Some(r) => {
                        lk.push(name.clone());
                        rk.push(r);
                    }
                    None => {
                        all = false;
                        break;
                    }
                },
                Side::Right(name) => match partner_left(name) {
                    Some(l) => {
                        lk.push(l);
                        rk.push(name.clone());
                    }
                    None => {
                        all = false;
                        break;
                    }
                },
            }
        }
        if all {
            report.descended += 1;
            let l = Box::new(push(lk, ratio, spec, left, leaves, report)?);
            let r = Box::new(push(rk, ratio, spec, right, leaves, report)?);
            return Ok(Plan::Join { left: l, right: r, kind, on });
        }
    }

    // Case 2 — one-sided push (the FK-join case and its generalization):
    // the filter commutes to the side holding all key columns, provided the
    // join kind cannot fabricate NULLs for that side.
    let all_left = sides.iter().all(|s| matches!(s, Side::Left(_)));
    let all_right = sides.iter().all(|s| matches!(s, Side::Right(_)));
    if all_left
        && matches!(kind, JoinKind::Inner | JoinKind::Left | JoinKind::Semi | JoinKind::Anti)
    {
        let lk: Vec<String> = sides
            .iter()
            .map(|s| match s {
                Side::Left(n) => n.clone(),
                Side::Right(_) => unreachable!(),
            })
            .collect();
        report.descended += 1;
        let l = Box::new(push(lk, ratio, spec, left, leaves, report)?);
        return Ok(Plan::Join { left: l, right: Box::new(right), kind, on });
    }
    if all_right && matches!(kind, JoinKind::Inner | JoinKind::Right) {
        let rk: Vec<String> = sides
            .iter()
            .map(|s| match s {
                Side::Right(n) => n.clone(),
                Side::Left(_) => unreachable!(),
            })
            .collect();
        report.descended += 1;
        let r = Box::new(push(rk, ratio, spec, right, leaves, report)?);
        return Ok(Plan::Join { left: Box::new(left), right: r, kind, on });
    }

    report.blockers.push(format!(
        "join blocks η on key ({}): key spans both inputs and is not covered by the \
         equality condition",
        key.join(",")
    ));
    Ok(Plan::Hash {
        input: Box::new(Plan::Join { left: Box::new(left), right: Box::new(right), kind, on }),
        key,
        ratio,
        spec,
    })
}
