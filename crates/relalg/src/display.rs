//! Pretty-printing of plan trees, mirroring the expression trees drawn in
//! Figures 2 and 3 of the paper.

use std::fmt;

use crate::plan::{JoinKind, Plan};

impl Plan {
    fn fmt_node(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        let pad = "  ".repeat(indent);
        match self {
            Plan::Scan { table } => writeln!(f, "{pad}Scan {table}"),
            Plan::Select { input, predicate } => {
                writeln!(f, "{pad}Select σ[{predicate}]")?;
                input.fmt_node(f, indent + 1)
            }
            Plan::Project { input, columns } => {
                let cols: Vec<String> = columns.iter().map(|(a, e)| format!("{a}={e}")).collect();
                writeln!(f, "{pad}Project Π[{}]", cols.join(", "))?;
                input.fmt_node(f, indent + 1)
            }
            Plan::Join { left, right, kind, on } => {
                let k = match kind {
                    JoinKind::Inner => "⋈",
                    JoinKind::Left => "⟕",
                    JoinKind::Right => "⟖",
                    JoinKind::Full => "⟗",
                    JoinKind::Semi => "⋉",
                    JoinKind::Anti => "▷",
                };
                let conds: Vec<String> = on.iter().map(|(l, r)| format!("{l}={r}")).collect();
                writeln!(f, "{pad}Join {k} [{}]", conds.join(" AND "))?;
                left.fmt_node(f, indent + 1)?;
                right.fmt_node(f, indent + 1)
            }
            Plan::Aggregate { input, group_by, aggregates } => {
                let aggs: Vec<String> = aggregates
                    .iter()
                    .map(|a| format!("{}={:?}({})", a.alias, a.func, a.arg))
                    .collect();
                writeln!(f, "{pad}Aggregate γ[by {}; {}]", group_by.join(","), aggs.join(", "))?;
                input.fmt_node(f, indent + 1)
            }
            Plan::Union { left, right } => {
                writeln!(f, "{pad}Union ∪")?;
                left.fmt_node(f, indent + 1)?;
                right.fmt_node(f, indent + 1)
            }
            Plan::Intersect { left, right } => {
                writeln!(f, "{pad}Intersect ∩")?;
                left.fmt_node(f, indent + 1)?;
                right.fmt_node(f, indent + 1)
            }
            Plan::Difference { left, right } => {
                writeln!(f, "{pad}Difference −")?;
                left.fmt_node(f, indent + 1)?;
                right.fmt_node(f, indent + 1)
            }
            Plan::Hash { input, key, ratio, .. } => {
                writeln!(f, "{pad}Hash η[key=({}), m={ratio}]", key.join(","))?;
                input.fmt_node(f, indent + 1)
            }
        }
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_node(f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggSpec;
    use crate::scalar::{col, lit};

    #[test]
    fn renders_tree() {
        let plan = Plan::scan("log")
            .join(Plan::scan("video"), JoinKind::Inner, &[("videoId", "videoId")])
            .aggregate(&["videoId"], vec![AggSpec::count_all("visitCount")])
            .select(col("visitCount").gt(lit(100i64)))
            .hash(&["videoId"], 0.05, Default::default());
        let s = plan.to_string();
        assert!(s.contains("Hash η[key=(videoId), m=0.05]"));
        assert!(s.contains("Join ⋈ [videoId=videoId]"));
        assert!(s.contains("Scan log"));
        // Children are indented under parents.
        assert!(s.lines().count() >= 5);
    }
}
