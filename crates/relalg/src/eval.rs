//! Plan evaluation: turns a [`Plan`] plus [`Bindings`] into a materialized
//! [`Table`].
//!
//! Bindings map leaf names to concrete relations. The same view-definition
//! plan evaluates against base tables, while a *maintenance strategy* plan
//! evaluates against bindings that also include the stale view and the delta
//! relations (`svc-ivm` constructs those).

use std::collections::HashMap;

use svc_storage::{Database, Result, StorageError, Table};

use crate::aggregate::bind_aggs;
use crate::aggregate::run_aggregate;
use crate::derive::{
    derive_aggregate, derive_hash, derive_join, derive_project, derive_select, derive_setop,
    Derived, LeafProvider, SetOpKind,
};
use crate::join::run_join;
use crate::plan::Plan;
use crate::setops::{run_difference, run_intersect, run_union};

/// Leaf-name → table bindings for evaluation.
#[derive(Debug, Clone, Default)]
pub struct Bindings<'a> {
    tables: HashMap<String, &'a Table>,
}

impl<'a> Bindings<'a> {
    /// Empty bindings.
    pub fn new() -> Bindings<'a> {
        Bindings::default()
    }

    /// Bind every table of a database under its own name.
    pub fn from_database(db: &'a Database) -> Bindings<'a> {
        let mut b = Bindings::new();
        for (name, table) in db.iter() {
            b.bind(name, table);
        }
        b
    }

    /// Bind (or rebind) a leaf name to a table.
    pub fn bind(&mut self, name: impl Into<String>, table: &'a Table) -> &mut Self {
        self.tables.insert(name.into(), table);
        self
    }

    /// Look up a leaf.
    pub fn table(&self, name: &str) -> Result<&'a Table> {
        self.tables.get(name).copied().ok_or_else(|| StorageError::UnknownTable(name.to_string()))
    }
}

impl LeafProvider for Bindings<'_> {
    fn leaf(&self, name: &str) -> Option<Derived> {
        self.tables.get(name).map(|t| Derived { schema: t.schema().clone(), key: t.key().to_vec() })
    }
}

fn derived_of(t: &Table) -> Derived {
    Derived { schema: t.schema().clone(), key: t.key().to_vec() }
}

/// Evaluate a plan against bindings, producing a keyed table.
///
/// This is a thin wrapper over the streaming executor: the plan is
/// compiled ([`crate::exec::compile`]) and run once. Callers that evaluate
/// the same plan repeatedly should compile once themselves and reuse the
/// [`crate::exec::PhysicalPlan`]. Callers that want the plan optimized
/// should run it through [`crate::optimizer::optimize`] first — evaluation
/// itself never rewrites, so the higher layers control that each plan is
/// optimized exactly once.
pub fn evaluate(plan: &Plan, bindings: &Bindings<'_>) -> Result<Table> {
    crate::exec::compile(plan, bindings)?.run(bindings)
}

/// The legacy recursive evaluator: materializes a keyed [`Table`] (index
/// included) at *every* node and clones the entire bound relation at every
/// `Scan`. Kept as the baseline the streaming executor is property-tested
/// against (`tests/exec_prop.rs`) and benchmarked against (`fig_exec`); new
/// code should call [`evaluate`].
pub fn evaluate_materializing(plan: &Plan, bindings: &Bindings<'_>) -> Result<Table> {
    match plan {
        Plan::Scan { table } => Ok(bindings.table(table)?.clone()),
        Plan::Select { input, predicate } => {
            let child = evaluate_materializing(input, bindings)?;
            let out = derive_select(&derived_of(&child), predicate)?;
            let pred = predicate.bind(child.schema())?;
            // Filtering a keyed table keeps keys unique; move the surviving
            // rows instead of cloning them.
            let mut rows = child.into_rows();
            rows.retain(|r| pred.matches(r));
            Table::from_unique_rows(out.schema, out.key, rows)
        }
        Plan::Project { input, columns } => {
            let child = evaluate_materializing(input, bindings)?;
            let out = derive_project(&derived_of(&child), columns)?;
            let bound: Vec<_> =
                columns.iter().map(|(_, e)| e.bind(child.schema())).collect::<Result<_>>()?;
            let rows =
                child.rows().iter().map(|r| bound.iter().map(|e| e.eval(r)).collect()).collect();
            Table::from_rows(out.schema, out.key, rows)
        }
        Plan::Join { left, right, kind, on } => {
            let l = evaluate_materializing(left, bindings)?;
            let r = evaluate_materializing(right, bindings)?;
            let (out, on_idx) =
                derive_join(&derived_of(&l), &derived_of(&r), *kind, on, right.name_hint())?;
            run_join(l, &r, *kind, &on_idx, &out)
        }
        Plan::Aggregate { input, group_by, aggregates } => {
            let child = evaluate_materializing(input, bindings)?;
            let out = derive_aggregate(&derived_of(&child), group_by, aggregates)?;
            let group_idx = child.schema().resolve_all(group_by)?;
            let aggs = bind_aggs(aggregates, child.schema())?;
            run_aggregate(&child, &group_idx, &aggs, &out, None)
        }
        Plan::Union { left, right } => {
            let l = evaluate_materializing(left, bindings)?;
            let r = evaluate_materializing(right, bindings)?;
            let out = derive_setop(&derived_of(&l), &derived_of(&r), SetOpKind::Union)?;
            run_union(l, r, &out)
        }
        Plan::Intersect { left, right } => {
            let l = evaluate_materializing(left, bindings)?;
            let r = evaluate_materializing(right, bindings)?;
            let out = derive_setop(&derived_of(&l), &derived_of(&r), SetOpKind::Intersect)?;
            run_intersect(l, &r, &out)
        }
        Plan::Difference { left, right } => {
            let l = evaluate_materializing(left, bindings)?;
            let r = evaluate_materializing(right, bindings)?;
            let out = derive_setop(&derived_of(&l), &derived_of(&r), SetOpKind::Difference)?;
            run_difference(l, &r, &out)
        }
        Plan::Hash { input, key, ratio, spec } => {
            let child = evaluate_materializing(input, bindings)?;
            let out = derive_hash(&derived_of(&child), key, *ratio)?;
            let key_idx = child.schema().resolve_all(key)?;
            // Hash the key columns in place (no KeyTuple allocation) and
            // move the selected rows through.
            let mut rows = child.into_rows();
            rows.retain(|r| spec.selects_row(r, &key_idx, *ratio));
            Table::from_unique_rows(out.schema, out.key, rows)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::{AggFunc, AggSpec};
    use crate::plan::JoinKind;
    use crate::scalar::{col, lit};
    use svc_storage::{DataType, HashSpec, Schema, Value};

    /// The paper's running example: Log(sessionId, videoId),
    /// Video(videoId, ownerId, duration).
    fn video_db() -> Database {
        let mut db = Database::new();
        let mut video = Table::new(
            Schema::from_pairs(&[
                ("videoId", DataType::Int),
                ("ownerId", DataType::Int),
                ("duration", DataType::Float),
            ])
            .unwrap(),
            &["videoId"],
        )
        .unwrap();
        for v in 0..20i64 {
            video
                .insert(vec![Value::Int(v), Value::Int(v % 5), Value::Float(0.5 + v as f64 * 0.1)])
                .unwrap();
        }
        let mut log = Table::new(
            Schema::from_pairs(&[("sessionId", DataType::Int), ("videoId", DataType::Int)])
                .unwrap(),
            &["sessionId"],
        )
        .unwrap();
        for s in 0..200i64 {
            log.insert(vec![Value::Int(s), Value::Int(s % 20)]).unwrap();
        }
        db.create_table("video", video);
        db.create_table("log", log);
        db
    }

    fn visit_view() -> Plan {
        Plan::scan("log")
            .join(Plan::scan("video"), JoinKind::Inner, &[("videoId", "videoId")])
            .aggregate(
                &["videoId"],
                vec![
                    AggSpec::count_all("visitCount"),
                    AggSpec::new("maxDuration", AggFunc::Max, col("duration")),
                ],
            )
    }

    #[test]
    fn visit_view_counts_visits() {
        let db = video_db();
        let b = Bindings::from_database(&db);
        let t = evaluate(&visit_view(), &b).unwrap();
        assert_eq!(t.len(), 20);
        for row in t.rows() {
            assert_eq!(row[1], Value::Int(10)); // 200 sessions over 20 videos
        }
    }

    #[test]
    fn select_over_view() {
        let db = video_db();
        let b = Bindings::from_database(&db);
        let plan = visit_view().select(col("videoId").lt(lit(5i64)));
        let t = evaluate(&plan, &b).unwrap();
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn generalized_projection_adds_columns() {
        let db = video_db();
        let b = Bindings::from_database(&db);
        let plan = visit_view().project(vec![
            ("videoId", col("videoId")),
            ("visitsPerMin", col("visitCount").div(col("maxDuration"))),
        ]);
        let t = evaluate(&plan, &b).unwrap();
        assert_eq!(t.schema().names(), vec!["videoId", "visitsPerMin"]);
        assert_eq!(t.len(), 20);
    }

    #[test]
    fn hash_node_samples_by_key() {
        let db = video_db();
        let b = Bindings::from_database(&db);
        let spec = HashSpec::with_seed(11);
        let plan = visit_view().hash(&["videoId"], 0.5, spec);
        let t = evaluate(&plan, &b).unwrap();
        assert!(t.len() < 20 && !t.is_empty(), "sampled {} of 20", t.len());
        // Idempotence: hashing the sample again with the same spec keeps it.
        let again =
            Plan::Hash { input: Box::new(plan), key: vec!["videoId".into()], ratio: 0.5, spec };
        let t2 = evaluate(&again, &b).unwrap();
        assert!(t2.same_contents(&t));
    }

    #[test]
    fn global_aggregate_single_row() {
        let db = video_db();
        let b = Bindings::from_database(&db);
        let plan = Plan::scan("log").aggregate(&[], vec![AggSpec::count_all("n")]);
        let t = evaluate(&plan, &b).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.rows()[0][0], Value::Int(200));
    }

    #[test]
    fn missing_binding_errors() {
        let b = Bindings::new();
        assert!(evaluate(&Plan::scan("nope"), &b).is_err());
    }
}
