//! Hash-based equi-join execution for all [`JoinKind`]s.
//!
//! Two layers: row-based cores ([`join_rows`], [`join_rows_pk_probe`]) that
//! operate on plain `Vec<Row>` batches — these are what the streaming
//! executor (`crate::exec`) calls, and they never allocate a `KeyTuple` per
//! probed row (keys are hashed in place via [`KeyTuple::hash_of`] and
//! candidates verified by column equality) — and the legacy table-based
//! wrapper [`run_join`] used by the materializing evaluator.

use std::collections::HashMap;

use svc_storage::{KeyTuple, Result, Row, Table, Value};

use crate::derive::Derived;
use crate::plan::JoinKind;

/// NULL join keys never match (SQL semantics): rows with a NULL join value
/// are excluded from the build side and treated as unmatched on the probe
/// side.
#[inline]
fn key_has_null(row: &[Value], cols: &[usize]) -> bool {
    cols.iter().any(|&i| row[i].is_null())
}

/// True when probing `right`'s primary-key index directly is legal: the
/// join reads the right side on exactly its key and the kind needs no
/// right-side bookkeeping.
pub fn pk_probe_applies(kind: JoinKind, right_cols: &[usize], right_key: &[usize]) -> bool {
    right_cols == right_key
        && matches!(kind, JoinKind::Inner | JoinKind::Left | JoinKind::Semi | JoinKind::Anti)
}

/// The build side of a generic hash equi-join: constructed exactly once
/// over the right input, then probed by any number of left-row chunks —
/// sequentially by [`join_rows`], or concurrently by the morsel-parallel
/// executor (probing is read-only, so `&JoinBuild` is shared across
/// worker threads).
pub struct JoinBuild<'r> {
    right: &'r [Row],
    right_cols: Vec<usize>,
    /// Right row indices chained under the in-place key hash.
    map: HashMap<u64, Vec<u32>>,
}

impl<'r> JoinBuild<'r> {
    /// Hash-build over the right join columns — in place, no per-row
    /// `KeyTuple`. Rows with NULL join keys never enter the map (SQL
    /// semantics: they match nothing).
    pub fn new(right: &'r [Row], on_idx: &[(usize, usize)]) -> JoinBuild<'r> {
        let right_cols: Vec<usize> = on_idx.iter().map(|&(_, r)| r).collect();
        let mut map: HashMap<u64, Vec<u32>> = HashMap::with_capacity(right.len());
        for (i, row) in right.iter().enumerate() {
            if !key_has_null(row, &right_cols) {
                map.entry(KeyTuple::hash_of(row, &right_cols)).or_default().push(i as u32);
            }
        }
        JoinBuild { right, right_cols, map }
    }

    /// Probe one chunk of left rows, draining them out of `left` (the
    /// caller can recycle the emptied buffer) and appending joined rows to
    /// `out` in left-row order. For `Right`/`Full` joins the matched right
    /// row indices are appended to `matched` (duplicates allowed); the
    /// caller merges the chunks' lists and emits the unmatched right rows
    /// at the barrier via [`JoinBuild::emit_unmatched_right`].
    pub fn probe(
        &self,
        left: &mut Vec<Row>,
        kind: JoinKind,
        left_cols: &[usize],
        pad_right: usize,
        out: &mut Vec<Row>,
        matched: &mut Vec<u32>,
    ) {
        // Reused per probe: indices of right rows whose key columns
        // actually equal the probe key (hash candidates minus collisions).
        let mut matches: Vec<u32> = Vec::new();
        for lrow in left.drain(..) {
            matches.clear();
            if !key_has_null(&lrow, left_cols) {
                if let Some(chain) = self.map.get(&KeyTuple::hash_of(&lrow, left_cols)) {
                    matches.extend(chain.iter().copied().filter(|&ri| {
                        KeyTuple::cols_eq(
                            &lrow,
                            left_cols,
                            &self.right[ri as usize],
                            &self.right_cols,
                        )
                    }));
                }
            }
            match kind {
                JoinKind::Semi => {
                    if !matches.is_empty() {
                        out.push(lrow);
                    }
                }
                JoinKind::Anti => {
                    if matches.is_empty() {
                        out.push(lrow);
                    }
                }
                _ => match matches.split_last() {
                    Some((last, rest)) => {
                        // Clone the left row for all matches but the last,
                        // which takes ownership.
                        for &ri in rest {
                            if matches!(kind, JoinKind::Full | JoinKind::Right) {
                                matched.push(ri);
                            }
                            let mut row = lrow.clone();
                            row.extend_from_slice(&self.right[ri as usize]);
                            out.push(row);
                        }
                        if matches!(kind, JoinKind::Full | JoinKind::Right) {
                            matched.push(*last);
                        }
                        let mut row = lrow;
                        row.extend_from_slice(&self.right[*last as usize]);
                        out.push(row);
                    }
                    None => {
                        if matches!(kind, JoinKind::Left | JoinKind::Full) {
                            let mut row = lrow;
                            row.extend(std::iter::repeat_n(Value::Null, pad_right));
                            out.push(row);
                        }
                    }
                },
            }
        }
    }

    /// Emit the NULL-padded right rows no probe matched — the post-probe
    /// barrier of `Right`/`Full` joins. `matched` is the union of the
    /// per-chunk match lists from [`JoinBuild::probe`].
    pub fn emit_unmatched_right(&self, matched: &[u32], pad_left: usize, out: &mut Vec<Row>) {
        let mut right_matched = vec![false; self.right.len()];
        for &ri in matched {
            right_matched[ri as usize] = true;
        }
        for (ri, rrow) in self.right.iter().enumerate() {
            // Rows with NULL join keys never entered the build map; they
            // are unmatched by construction.
            if !right_matched[ri] || key_has_null(rrow, &self.right_cols) {
                let mut row: Row = std::iter::repeat_n(Value::Null, pad_left).collect();
                row.extend_from_slice(rrow);
                out.push(row);
            }
        }
    }
}

/// Execute an equi-join over row batches. `left` is consumed so its rows
/// move into the output; `right` is borrowed (its rows are cloned only into
/// actual matches). `pad_left`/`pad_right` are the input arities, used to
/// NULL-pad outer-join rows. One [`JoinBuild`] pass over the right side,
/// one probe pass over the left.
pub fn join_rows(
    left: Vec<Row>,
    right: &[Row],
    kind: JoinKind,
    on_idx: &[(usize, usize)],
    pad_left: usize,
    pad_right: usize,
) -> Vec<Row> {
    let left_cols: Vec<usize> = on_idx.iter().map(|&(l, _)| l).collect();
    let build = JoinBuild::new(right, on_idx);
    let mut left = left;
    let mut rows: Vec<Row> = Vec::new();
    let mut matched: Vec<u32> = Vec::new();
    build.probe(&mut left, kind, &left_cols, pad_right, &mut rows, &mut matched);
    if matches!(kind, JoinKind::Right | JoinKind::Full) {
        build.emit_unmatched_right(&matched, pad_left, &mut rows);
    }
    rows
}

/// PK-probe variant: each left row looks up at most one right partner via
/// the right table's existing primary-key index — O(|left|) probes with no
/// build pass over the right side at all, which is what makes delta-sized
/// probes against large base relations cheap (the FK-join pattern of every
/// maintenance plan). Left rows are moved, never cloned; the probe tuple's
/// `Vec` is allocated once and reused across rows.
pub fn join_rows_pk_probe(
    left: Vec<Row>,
    right: &Table,
    kind: JoinKind,
    left_cols: &[usize],
    pad_right: usize,
) -> Vec<Row> {
    let mut left = left;
    let mut rows: Vec<Row> = Vec::new();
    join_rows_pk_probe_into(&mut left, right, kind, left_cols, pad_right, &mut rows);
    rows
}

/// [`join_rows_pk_probe`] draining `left` into a caller-provided output
/// buffer: the per-chunk core shared by the sequential executor (which
/// recycles the emptied left buffer) and the morsel-parallel executor
/// (which probes chunks concurrently — each probe only reads the right
/// table's index).
pub fn join_rows_pk_probe_into(
    left: &mut Vec<Row>,
    right: &Table,
    kind: JoinKind,
    left_cols: &[usize],
    pad_right: usize,
    rows: &mut Vec<Row>,
) {
    let mut probe = KeyTuple(Vec::with_capacity(left_cols.len()));
    for lrow in left.drain(..) {
        let partner = if key_has_null(&lrow, left_cols) {
            None
        } else {
            probe.0.clear();
            probe.0.extend(left_cols.iter().map(|&i| lrow[i].clone()));
            right.get(&probe)
        };
        match kind {
            JoinKind::Semi => {
                if partner.is_some() {
                    rows.push(lrow);
                }
            }
            JoinKind::Anti => {
                if partner.is_none() {
                    rows.push(lrow);
                }
            }
            JoinKind::Inner => {
                if let Some(r) = partner {
                    let mut row = lrow;
                    row.extend_from_slice(r);
                    rows.push(row);
                }
            }
            JoinKind::Left => {
                let mut row = lrow;
                match partner {
                    Some(r) => row.extend_from_slice(r),
                    None => row.extend(std::iter::repeat_n(Value::Null, pad_right)),
                }
                rows.push(row);
            }
            JoinKind::Right | JoinKind::Full => unreachable!("generic path handles outer joins"),
        }
    }
}

/// Execute an equi-join between materialized tables. The left input is
/// consumed so its rows can be *moved* into the output; `on_idx` holds
/// resolved `(left, right)` column positions; `out` is the derived output
/// type from [`crate::derive::derive_join`].
pub fn run_join(
    left: Table,
    right: &Table,
    kind: JoinKind,
    on_idx: &[(usize, usize)],
    out: &Derived,
) -> Result<Table> {
    let right_cols: Vec<usize> = on_idx.iter().map(|&(_, r)| r).collect();
    let pad_left = left.schema().len();
    let pad_right = right.schema().len();
    let rows = if pk_probe_applies(kind, &right_cols, right.key()) {
        let left_cols: Vec<usize> = on_idx.iter().map(|&(l, _)| l).collect();
        join_rows_pk_probe(left.into_rows(), right, kind, &left_cols, pad_right)
    } else {
        join_rows(left.into_rows(), right.rows(), kind, on_idx, pad_left, pad_right)
    };
    Table::from_rows(out.schema.clone(), out.key.clone(), rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::derive::derive_join;
    use svc_storage::{DataType, Schema};

    fn left() -> Table {
        let schema =
            Schema::from_pairs(&[("sessionId", DataType::Int), ("videoId", DataType::Int)])
                .unwrap();
        let mut t = Table::new(schema, &["sessionId"]).unwrap();
        for (s, v) in [(1, 10), (2, 10), (3, 20), (4, 99)] {
            t.insert(vec![Value::Int(s), Value::Int(v)]).unwrap();
        }
        t
    }

    fn right() -> Table {
        let schema =
            Schema::from_pairs(&[("videoId", DataType::Int), ("ownerId", DataType::Int)]).unwrap();
        let mut t = Table::new(schema, &["videoId"]).unwrap();
        for (v, o) in [(10, 100), (20, 200), (30, 300)] {
            t.insert(vec![Value::Int(v), Value::Int(o)]).unwrap();
        }
        t
    }

    fn run(kind: JoinKind) -> Table {
        let l = left();
        let r = right();
        let ld = Derived { schema: l.schema().clone(), key: l.key().to_vec() };
        let rd = Derived { schema: r.schema().clone(), key: r.key().to_vec() };
        let on = vec![("videoId".to_string(), "videoId".to_string())];
        let (out, on_idx) = derive_join(&ld, &rd, kind, &on, "video").unwrap();
        run_join(l, &r, kind, &on_idx, &out).unwrap()
    }

    #[test]
    fn inner_join_matches() {
        let t = run(JoinKind::Inner);
        assert_eq!(t.len(), 3); // sessions 1,2,3 match; 4 (video 99) does not
    }

    #[test]
    fn left_join_pads_unmatched() {
        let t = run(JoinKind::Left);
        assert_eq!(t.len(), 4);
        let unmatched: Vec<_> = t.rows().iter().filter(|r| r[2].is_null()).collect();
        assert_eq!(unmatched.len(), 1);
        assert_eq!(unmatched[0][0], Value::Int(4));
    }

    #[test]
    fn full_join_includes_both_sides() {
        let t = run(JoinKind::Full);
        // 3 matches + 1 unmatched left + 1 unmatched right (video 30)
        assert_eq!(t.len(), 5);
        let right_only: Vec<_> = t.rows().iter().filter(|r| r[0].is_null()).collect();
        assert_eq!(right_only.len(), 1);
        assert_eq!(right_only[0][2], Value::Int(30));
    }

    #[test]
    fn semi_and_anti_partition_left() {
        let semi = run(JoinKind::Semi);
        let anti = run(JoinKind::Anti);
        assert_eq!(semi.len(), 3);
        assert_eq!(anti.len(), 1);
        assert_eq!(semi.len() + anti.len(), left().len());
        assert_eq!(anti.rows()[0][0], Value::Int(4));
    }

    #[test]
    fn null_join_keys_never_match() {
        let mut l = left();
        l.insert(vec![Value::Int(5), Value::Null]).unwrap();
        let r = right();
        let ld = Derived { schema: l.schema().clone(), key: l.key().to_vec() };
        let rd = Derived { schema: r.schema().clone(), key: r.key().to_vec() };
        let on = vec![("videoId".to_string(), "videoId".to_string())];
        let (out, on_idx) = derive_join(&ld, &rd, JoinKind::Inner, &on, "video").unwrap();
        let t = run_join(l.clone(), &r, JoinKind::Inner, &on_idx, &out).unwrap();
        assert_eq!(t.len(), 3);
        let (out, on_idx) = derive_join(&ld, &rd, JoinKind::Anti, &on, "video").unwrap();
        let t = run_join(l, &r, JoinKind::Anti, &on_idx, &out).unwrap();
        // NULL-keyed row is kept by anti-join (NOT EXISTS semantics).
        assert_eq!(t.len(), 2);
    }

    /// The generic row path must agree with the PK-probe path wherever both
    /// are legal, including duplicate probe keys on the left.
    #[test]
    fn generic_rows_path_agrees_with_pk_probe() {
        let l = left();
        let r = right();
        for kind in [JoinKind::Inner, JoinKind::Left, JoinKind::Semi, JoinKind::Anti] {
            let generic = join_rows(l.rows().to_vec(), r.rows(), kind, &[(1, 0)], 2, 2);
            let probed = join_rows_pk_probe(l.rows().to_vec(), &r, kind, &[1], 2);
            assert_eq!(generic, probed, "{kind:?} diverged");
        }
    }
}
