//! Hash-based equi-join execution for all [`JoinKind`]s.
//!
//! Two layers: row-based cores ([`join_rows`], [`join_rows_pk_probe`]) that
//! operate on plain `Vec<Row>` batches — these are what the streaming
//! executor (`crate::exec`) calls, and they never allocate a `KeyTuple` per
//! probed row (keys are hashed in place via [`join_hash`] and candidates
//! verified by column equality) — and the legacy table-based wrapper
//! [`run_join`] used by the materializing evaluator.
//!
//! The build side is **hash-partitioned**: [`JoinBuild`] shards its chains
//! across `P` (a power of two) partition maps by `key_hash & (P - 1)`, each
//! keyed by the full 64-bit hash within its partition. Because equal keys
//! hash equal, a probe key's entire candidate chain lives in exactly one
//! partition, and because rows are inserted in right-row order, that chain
//! is identical to the chain a single map would hold — so probe output is
//! bit-for-bit independent of the partition count. Partitioning only
//! decides *where* a chain lives, which is what lets the morsel-parallel
//! executor build the `P` maps concurrently with zero cross-thread sharing
//! (`exec::partition`).

use std::collections::HashMap;

use svc_storage::{HashSpec, KeyTuple, Result, Row, Table, Value};

use crate::derive::Derived;
use crate::plan::JoinKind;

/// The fixed hash function of every hash join build/probe and partitioned
/// set-op dedup. A canonical-bytes hash ([`HashSpec::hash_row`] streams
/// `Value::canonical_bytes`), so it induces exactly the `Value` equality
/// classes — and the vectorized partition pass can produce identical
/// hashes straight from typed column storage. The seed is fixed:
/// partitioning must be a pure function of the data, never of the process.
#[inline]
pub fn join_hash() -> HashSpec {
    HashSpec::with_seed(0x05ca_1ab1_e0dd_ba11 ^ 0x9e37)
}

/// NULL join keys never match (SQL semantics): rows with a NULL join value
/// are excluded from the build side and treated as unmatched on the probe
/// side.
#[inline]
pub(crate) fn key_has_null(row: &[Value], cols: &[usize]) -> bool {
    cols.iter().any(|&i| row[i].is_null())
}

/// True when probing `right`'s primary-key index directly is legal: the
/// join reads the right side on exactly its key and the kind needs no
/// right-side bookkeeping.
pub fn pk_probe_applies(kind: JoinKind, right_cols: &[usize], right_key: &[usize]) -> bool {
    right_cols == right_key
        && matches!(kind, JoinKind::Inner | JoinKind::Left | JoinKind::Semi | JoinKind::Anti)
}

/// The build side of a generic hash equi-join: constructed once over the
/// right input — sequentially by [`JoinBuild::with_partitions`], or
/// partition-parallel by the morsel executor via [`JoinBuild::from_parts`]
/// — then probed by any number of left-row chunks (probing is read-only,
/// so `&JoinBuild` is shared across worker threads).
pub struct JoinBuild<'r> {
    right: &'r [Row],
    right_cols: Vec<usize>,
    spec: HashSpec,
    /// `partition(h) = h & mask`; `parts.len()` is `mask + 1`, a power of
    /// two.
    mask: u64,
    /// Per-partition chain maps: right row indices chained under the full
    /// key hash, in right-row order.
    parts: Vec<HashMap<u64, Vec<u32>>>,
}

impl<'r> JoinBuild<'r> {
    /// Hash-build over the right join columns — in place, no per-row
    /// `KeyTuple`. Rows with NULL join keys never enter the map (SQL
    /// semantics: they match nothing).
    pub fn new(right: &'r [Row], on_idx: &[(usize, usize)]) -> JoinBuild<'r> {
        JoinBuild::with_partitions(right, on_idx, 1)
    }

    /// [`JoinBuild::new`] sharded across `partitions` chain maps (rounded
    /// up to a power of two). Single-threaded; the result is bit-identical
    /// to `new` for any partition count — see the module docs.
    pub fn with_partitions(
        right: &'r [Row],
        on_idx: &[(usize, usize)],
        partitions: usize,
    ) -> JoinBuild<'r> {
        let right_cols: Vec<usize> = on_idx.iter().map(|&(_, r)| r).collect();
        let spec = join_hash();
        let p = partitions.max(1).next_power_of_two();
        let mask = (p - 1) as u64;
        let mut parts: Vec<HashMap<u64, Vec<u32>>> =
            (0..p).map(|_| HashMap::with_capacity(right.len() / p)).collect();
        for (i, row) in right.iter().enumerate() {
            if !key_has_null(row, &right_cols) {
                let h = spec.hash_row(row, &right_cols);
                parts[(h & mask) as usize].entry(h).or_default().push(i as u32);
            }
        }
        JoinBuild { right, right_cols, spec, mask, parts }
    }

    /// Assemble a build from partition maps the caller constructed — the
    /// seam for the parallel build (`exec::partition::build_join_par`),
    /// which scatters `(row id, hash)` pairs per partition morsel-parallel
    /// and builds each map on its own worker. `parts[p]` must hold exactly
    /// the non-NULL-keyed right rows with `join_hash & (len-1) == p`,
    /// chained in right-row order under their full hash; `parts.len()`
    /// must be a power of two.
    pub fn from_parts(
        right: &'r [Row],
        on_idx: &[(usize, usize)],
        parts: Vec<HashMap<u64, Vec<u32>>>,
    ) -> JoinBuild<'r> {
        debug_assert!(parts.len().is_power_of_two(), "partition count must be a power of two");
        let right_cols: Vec<usize> = on_idx.iter().map(|&(_, r)| r).collect();
        JoinBuild { right, right_cols, spec: join_hash(), mask: (parts.len() - 1) as u64, parts }
    }

    /// Number of partition maps (a power of two, ≥ 1).
    pub fn partition_count(&self) -> usize {
        self.parts.len()
    }

    /// Keyed (non-NULL) build rows per partition — the skew profile the
    /// telemetry layer reports as `part_max_rows`.
    pub fn partition_sizes(&self) -> Vec<usize> {
        self.parts.iter().map(|m| m.values().map(Vec::len).sum()).collect()
    }

    /// Keyed rows in the fullest partition (0 for an empty build).
    pub fn max_partition_rows(&self) -> u64 {
        self.partition_sizes().into_iter().max().unwrap_or(0) as u64
    }

    /// Probe one chunk of left rows, draining them out of `left` (the
    /// caller can recycle the emptied buffer) and appending joined rows to
    /// `out` in left-row order. For `Right`/`Full` joins the matched right
    /// row indices are appended to `matched` (duplicates allowed); the
    /// caller merges the chunks' lists and emits the unmatched right rows
    /// at the barrier via [`JoinBuild::emit_unmatched_right`].
    pub fn probe(
        &self,
        left: &mut Vec<Row>,
        kind: JoinKind,
        left_cols: &[usize],
        pad_right: usize,
        out: &mut Vec<Row>,
        matched: &mut Vec<u32>,
    ) {
        // Reused per probe: indices of right rows whose key columns
        // actually equal the probe key (hash candidates minus collisions).
        let mut matches: Vec<u32> = Vec::new();
        for lrow in left.drain(..) {
            matches.clear();
            if !key_has_null(&lrow, left_cols) {
                let h = self.spec.hash_row(&lrow, left_cols);
                if let Some(chain) = self.parts[(h & self.mask) as usize].get(&h) {
                    matches.extend(chain.iter().copied().filter(|&ri| {
                        KeyTuple::cols_eq(
                            &lrow,
                            left_cols,
                            &self.right[ri as usize],
                            &self.right_cols,
                        )
                    }));
                }
            }
            match kind {
                JoinKind::Semi => {
                    if !matches.is_empty() {
                        out.push(lrow);
                    }
                }
                JoinKind::Anti => {
                    if matches.is_empty() {
                        out.push(lrow);
                    }
                }
                _ => match matches.split_last() {
                    Some((last, rest)) => {
                        // Clone the left row for all matches but the last,
                        // which takes ownership.
                        for &ri in rest {
                            if matches!(kind, JoinKind::Full | JoinKind::Right) {
                                matched.push(ri);
                            }
                            let mut row = lrow.clone();
                            row.extend_from_slice(&self.right[ri as usize]);
                            out.push(row);
                        }
                        if matches!(kind, JoinKind::Full | JoinKind::Right) {
                            matched.push(*last);
                        }
                        let mut row = lrow;
                        row.extend_from_slice(&self.right[*last as usize]);
                        out.push(row);
                    }
                    None => {
                        if matches!(kind, JoinKind::Left | JoinKind::Full) {
                            let mut row = lrow;
                            row.extend(std::iter::repeat_n(Value::Null, pad_right));
                            out.push(row);
                        }
                    }
                },
            }
        }
    }

    /// Emit the NULL-padded right rows no probe matched — the post-probe
    /// barrier of `Right`/`Full` joins. `matched` is the union of the
    /// per-chunk match lists from [`JoinBuild::probe`]; iteration is over
    /// *global* right-row order, so the emitted tail is independent of how
    /// the probe side was chunked or the build side partitioned.
    pub fn emit_unmatched_right(&self, matched: &[u32], pad_left: usize, out: &mut Vec<Row>) {
        let mut right_matched = vec![false; self.right.len()];
        for &ri in matched {
            right_matched[ri as usize] = true;
        }
        for (ri, rrow) in self.right.iter().enumerate() {
            // Rows with NULL join keys never entered the build map; they
            // are unmatched by construction.
            if !right_matched[ri] || key_has_null(rrow, &self.right_cols) {
                let mut row: Row = std::iter::repeat_n(Value::Null, pad_left).collect();
                row.extend_from_slice(rrow);
                out.push(row);
            }
        }
    }
}

/// Execute an equi-join over row batches. `left` is consumed so its rows
/// move into the output; `right` is borrowed (its rows are cloned only into
/// actual matches). `pad_left`/`pad_right` are the input arities, used to
/// NULL-pad outer-join rows. One [`JoinBuild`] pass over the right side,
/// one probe pass over the left.
pub fn join_rows(
    left: Vec<Row>,
    right: &[Row],
    kind: JoinKind,
    on_idx: &[(usize, usize)],
    pad_left: usize,
    pad_right: usize,
) -> Vec<Row> {
    let left_cols: Vec<usize> = on_idx.iter().map(|&(l, _)| l).collect();
    let build = JoinBuild::new(right, on_idx);
    let mut left = left;
    let mut rows: Vec<Row> = Vec::new();
    let mut matched: Vec<u32> = Vec::new();
    build.probe(&mut left, kind, &left_cols, pad_right, &mut rows, &mut matched);
    if matches!(kind, JoinKind::Right | JoinKind::Full) {
        build.emit_unmatched_right(&matched, pad_left, &mut rows);
    }
    rows
}

/// PK-probe variant: each left row looks up at most one right partner via
/// the right table's existing primary-key index — O(|left|) probes with no
/// build pass over the right side at all, which is what makes delta-sized
/// probes against large base relations cheap (the FK-join pattern of every
/// maintenance plan). Left rows are moved, never cloned; the probe tuple's
/// `Vec` is allocated once and reused across rows.
pub fn join_rows_pk_probe(
    left: Vec<Row>,
    right: &Table,
    kind: JoinKind,
    left_cols: &[usize],
    pad_right: usize,
) -> Vec<Row> {
    let mut left = left;
    let mut rows: Vec<Row> = Vec::new();
    join_rows_pk_probe_into(&mut left, right, kind, left_cols, pad_right, &mut rows);
    rows
}

/// [`join_rows_pk_probe`] draining `left` into a caller-provided output
/// buffer: the per-chunk core shared by the sequential executor (which
/// recycles the emptied left buffer) and the morsel-parallel executor
/// (which probes chunks concurrently — each probe only reads the right
/// table's index).
pub fn join_rows_pk_probe_into(
    left: &mut Vec<Row>,
    right: &Table,
    kind: JoinKind,
    left_cols: &[usize],
    pad_right: usize,
    rows: &mut Vec<Row>,
) {
    let mut probe = KeyTuple(Vec::with_capacity(left_cols.len()));
    for lrow in left.drain(..) {
        let partner = if key_has_null(&lrow, left_cols) {
            None
        } else {
            probe.0.clear();
            probe.0.extend(left_cols.iter().map(|&i| lrow[i].clone()));
            right.get(&probe)
        };
        match kind {
            JoinKind::Semi => {
                if partner.is_some() {
                    rows.push(lrow);
                }
            }
            JoinKind::Anti => {
                if partner.is_none() {
                    rows.push(lrow);
                }
            }
            JoinKind::Inner => {
                if let Some(r) = partner {
                    let mut row = lrow;
                    row.extend_from_slice(r);
                    rows.push(row);
                }
            }
            JoinKind::Left => {
                let mut row = lrow;
                match partner {
                    Some(r) => row.extend_from_slice(r),
                    None => row.extend(std::iter::repeat_n(Value::Null, pad_right)),
                }
                rows.push(row);
            }
            JoinKind::Right | JoinKind::Full => unreachable!("generic path handles outer joins"),
        }
    }
}

/// Execute an equi-join between materialized tables. The left input is
/// consumed so its rows can be *moved* into the output; `on_idx` holds
/// resolved `(left, right)` column positions; `out` is the derived output
/// type from [`crate::derive::derive_join`].
pub fn run_join(
    left: Table,
    right: &Table,
    kind: JoinKind,
    on_idx: &[(usize, usize)],
    out: &Derived,
) -> Result<Table> {
    let right_cols: Vec<usize> = on_idx.iter().map(|&(_, r)| r).collect();
    let pad_left = left.schema().len();
    let pad_right = right.schema().len();
    let rows = if pk_probe_applies(kind, &right_cols, right.key()) {
        let left_cols: Vec<usize> = on_idx.iter().map(|&(l, _)| l).collect();
        join_rows_pk_probe(left.into_rows(), right, kind, &left_cols, pad_right)
    } else {
        join_rows(left.into_rows(), right.rows(), kind, on_idx, pad_left, pad_right)
    };
    Table::from_rows(out.schema.clone(), out.key.clone(), rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::derive::derive_join;
    use svc_storage::{DataType, Schema};

    fn left() -> Table {
        let schema =
            Schema::from_pairs(&[("sessionId", DataType::Int), ("videoId", DataType::Int)])
                .unwrap();
        let mut t = Table::new(schema, &["sessionId"]).unwrap();
        for (s, v) in [(1, 10), (2, 10), (3, 20), (4, 99)] {
            t.insert(vec![Value::Int(s), Value::Int(v)]).unwrap();
        }
        t
    }

    fn right() -> Table {
        let schema =
            Schema::from_pairs(&[("videoId", DataType::Int), ("ownerId", DataType::Int)]).unwrap();
        let mut t = Table::new(schema, &["videoId"]).unwrap();
        for (v, o) in [(10, 100), (20, 200), (30, 300)] {
            t.insert(vec![Value::Int(v), Value::Int(o)]).unwrap();
        }
        t
    }

    fn run(kind: JoinKind) -> Table {
        let l = left();
        let r = right();
        let ld = Derived { schema: l.schema().clone(), key: l.key().to_vec() };
        let rd = Derived { schema: r.schema().clone(), key: r.key().to_vec() };
        let on = vec![("videoId".to_string(), "videoId".to_string())];
        let (out, on_idx) = derive_join(&ld, &rd, kind, &on, "video").unwrap();
        run_join(l, &r, kind, &on_idx, &out).unwrap()
    }

    #[test]
    fn inner_join_matches() {
        let t = run(JoinKind::Inner);
        assert_eq!(t.len(), 3); // sessions 1,2,3 match; 4 (video 99) does not
    }

    #[test]
    fn left_join_pads_unmatched() {
        let t = run(JoinKind::Left);
        assert_eq!(t.len(), 4);
        let unmatched: Vec<_> = t.rows().iter().filter(|r| r[2].is_null()).collect();
        assert_eq!(unmatched.len(), 1);
        assert_eq!(unmatched[0][0], Value::Int(4));
    }

    #[test]
    fn full_join_includes_both_sides() {
        let t = run(JoinKind::Full);
        // 3 matches + 1 unmatched left + 1 unmatched right (video 30)
        assert_eq!(t.len(), 5);
        let right_only: Vec<_> = t.rows().iter().filter(|r| r[0].is_null()).collect();
        assert_eq!(right_only.len(), 1);
        assert_eq!(right_only[0][2], Value::Int(30));
    }

    #[test]
    fn semi_and_anti_partition_left() {
        let semi = run(JoinKind::Semi);
        let anti = run(JoinKind::Anti);
        assert_eq!(semi.len(), 3);
        assert_eq!(anti.len(), 1);
        assert_eq!(semi.len() + anti.len(), left().len());
        assert_eq!(anti.rows()[0][0], Value::Int(4));
    }

    #[test]
    fn null_join_keys_never_match() {
        let mut l = left();
        l.insert(vec![Value::Int(5), Value::Null]).unwrap();
        let r = right();
        let ld = Derived { schema: l.schema().clone(), key: l.key().to_vec() };
        let rd = Derived { schema: r.schema().clone(), key: r.key().to_vec() };
        let on = vec![("videoId".to_string(), "videoId".to_string())];
        let (out, on_idx) = derive_join(&ld, &rd, JoinKind::Inner, &on, "video").unwrap();
        let t = run_join(l.clone(), &r, JoinKind::Inner, &on_idx, &out).unwrap();
        assert_eq!(t.len(), 3);
        let (out, on_idx) = derive_join(&ld, &rd, JoinKind::Anti, &on, "video").unwrap();
        let t = run_join(l, &r, JoinKind::Anti, &on_idx, &out).unwrap();
        // NULL-keyed row is kept by anti-join (NOT EXISTS semantics).
        assert_eq!(t.len(), 2);
    }

    /// The generic row path must agree with the PK-probe path wherever both
    /// are legal, including duplicate probe keys on the left.
    #[test]
    fn generic_rows_path_agrees_with_pk_probe() {
        let l = left();
        let r = right();
        for kind in [JoinKind::Inner, JoinKind::Left, JoinKind::Semi, JoinKind::Anti] {
            let generic = join_rows(l.rows().to_vec(), r.rows(), kind, &[(1, 0)], 2, 2);
            let probed = join_rows_pk_probe(l.rows().to_vec(), &r, kind, &[1], 2);
            assert_eq!(generic, probed, "{kind:?} diverged");
        }
    }

    /// The structural determinism claim of the partitioned build: for any
    /// partition count, every join kind produces bit-identical output —
    /// the chain a probe sees in its partition is the chain a single map
    /// would hold.
    #[test]
    fn partition_count_never_changes_join_output() {
        // Duplicate keys, a NULL key on each side, and both outer sides.
        let mk = |vals: &[Option<i64>]| -> Vec<Row> {
            vals.iter()
                .enumerate()
                .map(|(i, v)| vec![Value::Int(i as i64), v.map_or(Value::Null, Value::Int)])
                .collect()
        };
        let lrows = mk(&[Some(10), Some(10), Some(20), None, Some(99), Some(20)]);
        let rrows = mk(&[Some(10), Some(20), Some(20), None, Some(30)]);
        for kind in
            [JoinKind::Inner, JoinKind::Left, JoinKind::Right, JoinKind::Full, JoinKind::Semi]
        {
            let reference = {
                let build = JoinBuild::new(&rrows, &[(1, 1)]);
                let mut l = lrows.clone();
                let (mut out, mut matched) = (Vec::new(), Vec::new());
                build.probe(&mut l, kind, &[1], 2, &mut out, &mut matched);
                if matches!(kind, JoinKind::Right | JoinKind::Full) {
                    build.emit_unmatched_right(&matched, 2, &mut out);
                }
                out
            };
            for p in [2usize, 3, 4, 8, 64] {
                let build = JoinBuild::with_partitions(&rrows, &[(1, 1)], p);
                assert_eq!(build.partition_count(), p.next_power_of_two());
                assert_eq!(
                    build.partition_sizes().iter().sum::<usize>(),
                    4,
                    "keyed rows must shard without loss"
                );
                let mut l = lrows.clone();
                let (mut out, mut matched) = (Vec::new(), Vec::new());
                build.probe(&mut l, kind, &[1], 2, &mut out, &mut matched);
                if matches!(kind, JoinKind::Right | JoinKind::Full) {
                    build.emit_unmatched_right(&matched, 2, &mut out);
                }
                assert_eq!(out, reference, "{kind:?} with {p} partitions diverged");
            }
        }
    }
}
