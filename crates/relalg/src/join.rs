//! Hash-based equi-join execution for all [`JoinKind`]s.

use std::collections::HashMap;

use svc_storage::{KeyTuple, Result, Row, Table, Value};

use crate::derive::Derived;
use crate::plan::JoinKind;

/// Join key for probing: NULL keys never match (SQL semantics), which we
/// encode by excluding rows with NULL join values from the build side and
/// treating them as unmatched on the probe side.
fn join_key(row: &Row, cols: &[usize]) -> Option<KeyTuple> {
    if cols.iter().any(|&i| row[i].is_null()) {
        return None;
    }
    Some(KeyTuple::of(row, cols))
}

/// Execute an equi-join. The left input is consumed so its rows can be
/// *moved* into the output (the evaluator materializes every node, so the
/// left table is always an owned intermediate); `on_idx` holds resolved
/// `(left, right)` column positions; `out` is the derived output type from
/// [`crate::derive::derive_join`].
pub fn run_join(
    left: Table,
    right: &Table,
    kind: JoinKind,
    on_idx: &[(usize, usize)],
    out: &Derived,
) -> Result<Table> {
    let left_cols: Vec<usize> = on_idx.iter().map(|&(l, _)| l).collect();
    let right_cols: Vec<usize> = on_idx.iter().map(|&(_, r)| r).collect();

    // Fast path: when the right side is joined on exactly its primary key
    // and no right-side bookkeeping is needed, probe its existing PK index
    // instead of building a hash table — O(|left|) instead of
    // O(|left| + |right|). This is what makes delta-sized probes against
    // large base relations cheap (the FK-join pattern of every maintenance
    // plan).
    if right_cols == right.key()
        && matches!(kind, JoinKind::Inner | JoinKind::Left | JoinKind::Semi | JoinKind::Anti)
    {
        return run_join_pk_probe(left, right, kind, &left_cols, out);
    }

    // Build side: right rows indexed by join key.
    let mut build: HashMap<KeyTuple, Vec<usize>> = HashMap::new();
    for (i, row) in right.rows().iter().enumerate() {
        if let Some(k) = join_key(row, &right_cols) {
            build.entry(k).or_default().push(i);
        }
    }

    let mut rows: Vec<Row> = Vec::new();
    let mut right_matched = vec![false; right.rows().len()];

    let pad_right = right.schema().len();
    let pad_left = left.schema().len();

    for lrow in left.into_rows() {
        let matches = join_key(&lrow, &left_cols).and_then(|k| build.get(&k));
        match kind {
            JoinKind::Semi => {
                if matches.is_some_and(|m| !m.is_empty()) {
                    rows.push(lrow);
                }
            }
            JoinKind::Anti => {
                if matches.is_none_or(|m| m.is_empty()) {
                    rows.push(lrow);
                }
            }
            _ => match matches {
                Some(idxs) => {
                    // Clone the left row for all matches but the last, which
                    // takes ownership.
                    let (last, rest) = idxs.split_last().expect("build entries are non-empty");
                    for &ri in rest {
                        if matches!(kind, JoinKind::Full | JoinKind::Right) {
                            right_matched[ri] = true;
                        }
                        let mut row = lrow.clone();
                        row.extend_from_slice(&right.rows()[ri]);
                        rows.push(row);
                    }
                    if matches!(kind, JoinKind::Full | JoinKind::Right) {
                        right_matched[*last] = true;
                    }
                    let mut row = lrow;
                    row.extend_from_slice(&right.rows()[*last]);
                    rows.push(row);
                }
                None => {
                    if matches!(kind, JoinKind::Left | JoinKind::Full) {
                        let mut row = lrow;
                        row.extend(std::iter::repeat_n(Value::Null, pad_right));
                        rows.push(row);
                    }
                }
            },
        }
    }

    if matches!(kind, JoinKind::Right | JoinKind::Full) {
        for (ri, rrow) in right.rows().iter().enumerate() {
            let unmatched = !right_matched[ri];
            // Rows with NULL join keys never entered the build map; they are
            // unmatched by construction.
            let null_key = join_key(rrow, &right_cols).is_none();
            if unmatched || (null_key && matches!(kind, JoinKind::Right | JoinKind::Full)) {
                let mut row: Row = std::iter::repeat_n(Value::Null, pad_left).collect();
                row.extend_from_slice(rrow);
                rows.push(row);
            }
        }
    }

    Table::from_rows(out.schema.clone(), out.key.clone(), rows)
}

/// PK-probe variant: each left row looks up at most one right partner via
/// the right table's primary-key index. Left rows are moved, never cloned.
fn run_join_pk_probe(
    left: Table,
    right: &Table,
    kind: JoinKind,
    left_cols: &[usize],
    out: &Derived,
) -> Result<Table> {
    let pad_right = right.schema().len();
    let mut rows: Vec<svc_storage::Row> = Vec::new();
    for lrow in left.into_rows() {
        let partner = join_key(&lrow, left_cols).and_then(|k| right.get(&k));
        match kind {
            JoinKind::Semi => {
                if partner.is_some() {
                    rows.push(lrow);
                }
            }
            JoinKind::Anti => {
                if partner.is_none() {
                    rows.push(lrow);
                }
            }
            JoinKind::Inner => {
                if let Some(r) = partner {
                    let mut row = lrow;
                    row.extend_from_slice(r);
                    rows.push(row);
                }
            }
            JoinKind::Left => {
                let mut row = lrow;
                match partner {
                    Some(r) => row.extend_from_slice(r),
                    None => row.extend(std::iter::repeat_n(Value::Null, pad_right)),
                }
                rows.push(row);
            }
            JoinKind::Right | JoinKind::Full => unreachable!("generic path handles outer joins"),
        }
    }
    Table::from_rows(out.schema.clone(), out.key.clone(), rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::derive::derive_join;
    use svc_storage::{DataType, Schema};

    fn left() -> Table {
        let schema =
            Schema::from_pairs(&[("sessionId", DataType::Int), ("videoId", DataType::Int)])
                .unwrap();
        let mut t = Table::new(schema, &["sessionId"]).unwrap();
        for (s, v) in [(1, 10), (2, 10), (3, 20), (4, 99)] {
            t.insert(vec![Value::Int(s), Value::Int(v)]).unwrap();
        }
        t
    }

    fn right() -> Table {
        let schema =
            Schema::from_pairs(&[("videoId", DataType::Int), ("ownerId", DataType::Int)]).unwrap();
        let mut t = Table::new(schema, &["videoId"]).unwrap();
        for (v, o) in [(10, 100), (20, 200), (30, 300)] {
            t.insert(vec![Value::Int(v), Value::Int(o)]).unwrap();
        }
        t
    }

    fn run(kind: JoinKind) -> Table {
        let l = left();
        let r = right();
        let ld = Derived { schema: l.schema().clone(), key: l.key().to_vec() };
        let rd = Derived { schema: r.schema().clone(), key: r.key().to_vec() };
        let on = vec![("videoId".to_string(), "videoId".to_string())];
        let (out, on_idx) = derive_join(&ld, &rd, kind, &on, "video").unwrap();
        run_join(l, &r, kind, &on_idx, &out).unwrap()
    }

    #[test]
    fn inner_join_matches() {
        let t = run(JoinKind::Inner);
        assert_eq!(t.len(), 3); // sessions 1,2,3 match; 4 (video 99) does not
    }

    #[test]
    fn left_join_pads_unmatched() {
        let t = run(JoinKind::Left);
        assert_eq!(t.len(), 4);
        let unmatched: Vec<_> = t.rows().iter().filter(|r| r[2].is_null()).collect();
        assert_eq!(unmatched.len(), 1);
        assert_eq!(unmatched[0][0], Value::Int(4));
    }

    #[test]
    fn full_join_includes_both_sides() {
        let t = run(JoinKind::Full);
        // 3 matches + 1 unmatched left + 1 unmatched right (video 30)
        assert_eq!(t.len(), 5);
        let right_only: Vec<_> = t.rows().iter().filter(|r| r[0].is_null()).collect();
        assert_eq!(right_only.len(), 1);
        assert_eq!(right_only[0][2], Value::Int(30));
    }

    #[test]
    fn semi_and_anti_partition_left() {
        let semi = run(JoinKind::Semi);
        let anti = run(JoinKind::Anti);
        assert_eq!(semi.len(), 3);
        assert_eq!(anti.len(), 1);
        assert_eq!(semi.len() + anti.len(), left().len());
        assert_eq!(anti.rows()[0][0], Value::Int(4));
    }

    #[test]
    fn null_join_keys_never_match() {
        let mut l = left();
        l.insert(vec![Value::Int(5), Value::Null]).unwrap();
        let r = right();
        let ld = Derived { schema: l.schema().clone(), key: l.key().to_vec() };
        let rd = Derived { schema: r.schema().clone(), key: r.key().to_vec() };
        let on = vec![("videoId".to_string(), "videoId".to_string())];
        let (out, on_idx) = derive_join(&ld, &rd, JoinKind::Inner, &on, "video").unwrap();
        let t = run_join(l.clone(), &r, JoinKind::Inner, &on_idx, &out).unwrap();
        assert_eq!(t.len(), 3);
        let (out, on_idx) = derive_join(&ld, &rd, JoinKind::Anti, &on, "video").unwrap();
        let t = run_join(l, &r, JoinKind::Anti, &on_idx, &out).unwrap();
        // NULL-keyed row is kept by anti-join (NOT EXISTS semantics).
        assert_eq!(t.len(), 2);
    }
}
