//! The relational expression tree ("plan"): the paper's view-definition
//! language (Section 3.1) plus the η hashing operator (Section 4.4) as a
//! first-class node so that maintenance strategies and their sampled
//! variants are all just plans.

use svc_storage::HashSpec;

use crate::aggregate::AggSpec;
use crate::scalar::Expr;

/// Join kinds. The paper writes `./` for all joins "even extended outer
/// joins"; `Semi`/`Anti` are internal additions used by the IVM engine to
/// express keyed set operations (they preserve the left relation's schema
/// and key, so Definition 2 extends to them trivially).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// Inner equi-join.
    Inner,
    /// Left outer join.
    Left,
    /// Right outer join.
    Right,
    /// Full outer join (used by change-table merges, Example 1).
    Full,
    /// Left semi-join: left rows with at least one match.
    Semi,
    /// Left anti-join: left rows with no match.
    Anti,
}

/// A relational expression. Leaves are named relations resolved at
/// evaluation time through [`crate::eval::Bindings`], which lets the same
/// plan shape serve as a view definition (leaves = base tables) or as a
/// maintenance strategy (leaves = stale view, base tables, delta tables).
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// A named leaf relation.
    Scan {
        /// Name of the relation, resolved via bindings.
        table: String,
    },
    /// Selection σ_φ(R).
    Select {
        /// Input plan.
        input: Box<Plan>,
        /// Row predicate.
        predicate: Expr,
    },
    /// Generalized projection Π_{a1,...,ak}(R); may add computed columns.
    Project {
        /// Input plan.
        input: Box<Plan>,
        /// Output columns as `(alias, expression)`.
        columns: Vec<(String, Expr)>,
    },
    /// Equi-join of two plans.
    Join {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
        /// The join flavor.
        kind: JoinKind,
        /// Equality pairs `(left_col, right_col)`.
        on: Vec<(String, String)>,
    },
    /// Group-by aggregation γ_{f,A}(R).
    Aggregate {
        /// Input plan.
        input: Box<Plan>,
        /// Grouping column names (`A`). May be empty for a global aggregate.
        group_by: Vec<String>,
        /// Aggregate outputs.
        aggregates: Vec<AggSpec>,
    },
    /// Set union (duplicate rows collapse).
    Union {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
    },
    /// Set intersection.
    Intersect {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
    },
    /// Set difference (left minus right).
    Difference {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
    },
    /// The hashing operator η_{a,m}(R): keep rows whose key hashes ≤ ratio.
    Hash {
        /// Input plan.
        input: Box<Plan>,
        /// Key columns `a` to hash (usually the relation's primary key).
        key: Vec<String>,
        /// Sampling ratio `m` in `[0, 1]`.
        ratio: f64,
        /// The seeded hash function.
        spec: HashSpec,
    },
}

impl Plan {
    /// A leaf scan.
    pub fn scan(table: impl Into<String>) -> Plan {
        Plan::Scan { table: table.into() }
    }

    /// Selection.
    pub fn select(self, predicate: Expr) -> Plan {
        Plan::Select { input: Box::new(self), predicate }
    }

    /// Generalized projection from `(alias, expr)` pairs.
    pub fn project(self, columns: Vec<(impl Into<String>, Expr)>) -> Plan {
        Plan::Project {
            input: Box::new(self),
            columns: columns.into_iter().map(|(n, e)| (n.into(), e)).collect(),
        }
    }

    /// Projection of bare columns by name.
    pub fn project_cols(self, names: &[&str]) -> Plan {
        Plan::Project {
            input: Box::new(self),
            columns: names.iter().map(|n| (n.to_string(), crate::scalar::col(*n))).collect(),
        }
    }

    /// Equi-join with another plan.
    pub fn join(self, other: Plan, kind: JoinKind, on: &[(&str, &str)]) -> Plan {
        Plan::Join {
            left: Box::new(self),
            right: Box::new(other),
            kind,
            on: on.iter().map(|(l, r)| (l.to_string(), r.to_string())).collect(),
        }
    }

    /// Group-by aggregation.
    pub fn aggregate(self, group_by: &[&str], aggregates: Vec<AggSpec>) -> Plan {
        Plan::Aggregate {
            input: Box::new(self),
            group_by: group_by.iter().map(|s| s.to_string()).collect(),
            aggregates,
        }
    }

    /// Set union.
    pub fn union(self, other: Plan) -> Plan {
        Plan::Union { left: Box::new(self), right: Box::new(other) }
    }

    /// Set intersection.
    pub fn intersect(self, other: Plan) -> Plan {
        Plan::Intersect { left: Box::new(self), right: Box::new(other) }
    }

    /// Set difference.
    pub fn difference(self, other: Plan) -> Plan {
        Plan::Difference { left: Box::new(self), right: Box::new(other) }
    }

    /// Wrap in the η hashing operator.
    pub fn hash(self, key: &[&str], ratio: f64, spec: HashSpec) -> Plan {
        Plan::Hash {
            input: Box::new(self),
            key: key.iter().map(|s| s.to_string()).collect(),
            ratio,
            spec,
        }
    }

    /// Names of all leaf relations referenced by this plan.
    pub fn leaf_tables(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_leaves(&mut out);
        out
    }

    fn collect_leaves<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Plan::Scan { table } => out.push(table),
            Plan::Select { input, .. } | Plan::Project { input, .. } => input.collect_leaves(out),
            Plan::Aggregate { input, .. } | Plan::Hash { input, .. } => input.collect_leaves(out),
            Plan::Join { left, right, .. }
            | Plan::Union { left, right }
            | Plan::Intersect { left, right }
            | Plan::Difference { left, right } => {
                left.collect_leaves(out);
                right.collect_leaves(out);
            }
        }
    }

    /// Rewrite every leaf name through `f` (`None` keeps the name). Used by
    /// the mini-batch maintenance path to give each delta chunk its own
    /// `__ins.T@p` / `__del.T@p` bindings while sharing one plan shape.
    pub fn rename_leaves(self, f: &mut impl FnMut(&str) -> Option<String>) -> Plan {
        match self {
            Plan::Scan { table } => {
                let table = f(&table).unwrap_or(table);
                Plan::Scan { table }
            }
            Plan::Select { input, predicate } => {
                Plan::Select { input: Box::new(input.rename_leaves(f)), predicate }
            }
            Plan::Project { input, columns } => {
                Plan::Project { input: Box::new(input.rename_leaves(f)), columns }
            }
            Plan::Join { left, right, kind, on } => Plan::Join {
                left: Box::new(left.rename_leaves(f)),
                right: Box::new(right.rename_leaves(f)),
                kind,
                on,
            },
            Plan::Aggregate { input, group_by, aggregates } => {
                Plan::Aggregate { input: Box::new(input.rename_leaves(f)), group_by, aggregates }
            }
            Plan::Union { left, right } => Plan::Union {
                left: Box::new(left.rename_leaves(f)),
                right: Box::new(right.rename_leaves(f)),
            },
            Plan::Intersect { left, right } => Plan::Intersect {
                left: Box::new(left.rename_leaves(f)),
                right: Box::new(right.rename_leaves(f)),
            },
            Plan::Difference { left, right } => Plan::Difference {
                left: Box::new(left.rename_leaves(f)),
                right: Box::new(right.rename_leaves(f)),
            },
            Plan::Hash { input, key, ratio, spec } => {
                Plan::Hash { input: Box::new(input.rename_leaves(f)), key, ratio, spec }
            }
        }
    }

    /// A short name for the relation produced by this plan, used to
    /// disambiguate column names on join outputs.
    pub fn name_hint(&self) -> &str {
        match self {
            Plan::Scan { table } => table,
            Plan::Select { input, .. } | Plan::Project { input, .. } => input.name_hint(),
            Plan::Hash { input, .. } => input.name_hint(),
            Plan::Aggregate { .. } => "agg",
            Plan::Join { .. } => "join",
            Plan::Union { .. } => "union",
            Plan::Intersect { .. } => "intersect",
            Plan::Difference { .. } => "diff",
        }
    }

    /// Number of operator nodes in the tree (leaves included).
    pub fn node_count(&self) -> usize {
        match self {
            Plan::Scan { .. } => 1,
            Plan::Select { input, .. }
            | Plan::Project { input, .. }
            | Plan::Aggregate { input, .. }
            | Plan::Hash { input, .. } => 1 + input.node_count(),
            Plan::Join { left, right, .. }
            | Plan::Union { left, right }
            | Plan::Intersect { left, right }
            | Plan::Difference { left, right } => 1 + left.node_count() + right.node_count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggFunc;
    use crate::scalar::{col, lit};

    #[test]
    fn builders_compose() {
        let plan = Plan::scan("log")
            .join(Plan::scan("video"), JoinKind::Inner, &[("videoId", "videoId")])
            .aggregate(&["videoId"], vec![AggSpec::new("visitCount", AggFunc::Count, lit(1i64))])
            .select(col("visitCount").gt(lit(100i64)));
        assert_eq!(plan.node_count(), 5);
        assert_eq!(plan.leaf_tables(), vec!["log", "video"]);
    }

    #[test]
    fn name_hint_passes_through_unary_ops() {
        let plan = Plan::scan("video").select(col("duration").gt(lit(1.5)));
        assert_eq!(plan.name_hint(), "video");
    }
}
