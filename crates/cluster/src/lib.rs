// The one crate in the workspace allowed to contain `unsafe`: the
// work-stealing executor's type-erased `RawTask` needs it. `deny` (not
// `forbid`) so the audited block in `executor.rs` can opt back in with an
// item-level `#[allow(unsafe_code)]`; every unsafe operation there must sit
// inside an explicit `unsafe {}` with a SAFETY comment
// (`unsafe_op_in_unsafe_fn`). `scripts/unsafe_audit.sh` enforces that no
// other module grows an `unsafe` token.
#![deny(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]

//! # svc-cluster
//!
//! The distributed-execution substrate for the paper's Spark experiments
//! (Sections 7.5–7.6.2, Figures 14–16). Spark itself is not available here,
//! so this crate reproduces the three mechanisms those experiments depend
//! on:
//!
//! 1. **batch amortization** — per-batch driver work (plan compilation,
//!    change-table merge folding) makes small batches slow (Figure 14a).
//!    [`minibatch::BatchPipeline`] measures this on *real* maintenance
//!    plans: delta chunks compile to per-partition change tables
//!    (`svc-ivm`), evaluate on the pool (`WorkerPool::evaluate_plans`), and
//!    merge into the view. The synthetic spin model survives as
//!    [`minibatch::SpinPipeline`] for calibration only;
//! 2. **contention** — two concurrent maintenance pipelines share the
//!    worker pool and reduce each other's throughput, less so at large
//!    batch sizes (Figure 14b);
//! 3. **synchronization idle time** — stage barriers with skewed task sizes
//!    leave workers idle, which SVC's small sampling tasks can absorb
//!    (Figure 16).
//!
//! [`timeline`] drives the *real* SVC machinery — IVM refreshes routed
//! through the plan-driven [`minibatch::BatchPipeline`] — over a periodic
//! maintenance schedule to reproduce the max-error-vs-sampling-ratio
//! trade-off of Figure 15.

pub mod executor;
pub mod minibatch;
pub mod timeline;

pub use executor::{ExecutionTrace, PoolMetrics, WorkerPool};
pub use minibatch::{BatchPipeline, BatchRun, PipelineMetrics, SpinPipeline, ThroughputPoint};
pub use timeline::{timeline_max_error, timeline_max_error_on, TimelineConfig, TimelineResult};
