//! Mini-batch maintenance pipelines and the throughput / batch-size
//! trade-off (Section 7.6.2, Figure 14).
//!
//! [`BatchPipeline`] is a real mini-batch IVM executor: it drains pending
//! [`Deltas`] into batches, splits each batch into per-partition delta
//! chunks, compiles every chunk into a signed change-table plan
//! (`svc_ivm::batch_change_plans` — all chunks share one plan shape and one
//! binding set, the multi-query batch-evaluation setting), evaluates the
//! batch on the shared [`WorkerPool`] (`WorkerPool::evaluate_plans`), and
//! folds the resulting change tables into the materialized view with the
//! driver-side merge plan (`svc_ivm::merge_change_plan`). Larger batches
//! amortize the per-batch driver work (plan compilation, merge folding)
//! over more records — the Figure 14 shape, now measured on real plans
//! instead of modeled with synthetic busy-work.
//!
//! Chunk-level parallelism is exact when no cross-chunk delta interactions
//! exist: single-table batches through tree-shaped views (each touched
//! table scanned once). Batches that violate that condition — several
//! tables touched under a join, or a touched table scanned by more than
//! one leaf — run as one chunk; views outside the change-table class
//! (min/max under deletions, median, non-aggregate or nested-aggregate
//! views) fall back to their full sequential maintenance plan, still
//! evaluated on the pool.
//!
//! [`SpinPipeline`] keeps the previous synthetic cost model (fixed per-batch
//! overhead plus per-record spin work) for calibrating the Figure 14 curves
//! against an idealized Spark-like scheduler.

use std::collections::{BTreeMap, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use svc_catalog::Catalog;
use svc_ivm::delta::{del_leaf, del_leaf_at, ins_leaf, ins_leaf_at};
use svc_ivm::strategy::{
    batch_change_plans, maintenance_plan, merge_change_plan, MaintCatalog, CHANGE_LEAF, STALE_LEAF,
};
use svc_ivm::view::{maintenance_bindings, MaterializedView};
use svc_relalg::derive::Derived;
use svc_relalg::eval::Bindings;
use svc_relalg::exec::{compile, PhysicalPlan};
use svc_relalg::optimizer::{optimize, optimize_with};
use svc_relalg::plan::Plan;
use svc_storage::{Database, Deltas, Result, StorageError, Table};
use svc_telemetry::{Counter, Gauge, TraceRecorder};

use crate::executor::{panic_text, spin, WorkerPool};

/// One measured point of the throughput curve.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputPoint {
    /// Batch size in records.
    pub batch_size: usize,
    /// Records per second achieved.
    pub throughput: f64,
}

/// What one [`BatchPipeline::maintain`] call did.
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchRun {
    /// Delta records processed.
    pub records: usize,
    /// Number of batches executed.
    pub batches: usize,
    /// Change-table (or fallback maintenance) plans evaluated on the pool.
    pub plans_evaluated: usize,
    /// Batches that could not use chunk-parallel change tables and ran the
    /// sequential maintenance plan instead.
    pub fallback_batches: usize,
    /// Re-attempts after transient batch failures (retry policy only).
    pub retries: usize,
    /// Batches that exhausted their retries and moved to the dead-letter
    /// queue ([`BatchPipeline::quarantined`]); the view was marked dirty.
    pub quarantined: usize,
    /// Wall-clock seconds.
    pub seconds: f64,
}

impl BatchRun {
    /// Records per second.
    pub fn throughput(&self) -> f64 {
        if self.seconds > 0.0 {
            self.records as f64 / self.seconds
        } else {
            0.0
        }
    }
}

/// How [`BatchPipeline::maintain`] responds to a failing mini-batch.
///
/// Under either policy the view itself is safe: maintain folds batches into
/// a *shadow* table and commits it to the view in one epoch swap at the
/// end, so no failure mode can expose a partial fold.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum FailurePolicy {
    /// The default: the first failing batch aborts the call with an error
    /// naming the batch; the view keeps its pre-maintain epoch and the
    /// caller's deltas are untouched (retry the whole call, or switch
    /// policy).
    #[default]
    Strict,
    /// Degrade gracefully: a failing batch is retried up to `retries`
    /// times with bounded linear backoff; when retries are exhausted it
    /// moves to the dead-letter queue with a diagnosis
    /// ([`BatchPipeline::quarantined`]), the view is marked dirty, and the
    /// pipeline keeps folding subsequent healthy batches (sound because
    /// change-table contributions of disjoint delta subsets are
    /// independent and additive — the quarantined batch can be re-folded
    /// later via [`BatchPipeline::retry_quarantined`], or the view
    /// recovered wholesale via [`BatchPipeline::recover_via_recompute`]).
    /// Task panics are caught at the batch boundary and treated as
    /// transient failures too.
    RetryQuarantine {
        /// Re-attempts per batch after its first failure.
        retries: u32,
        /// Base backoff: attempt `n` sleeps `n × backoff_ms`, capped at
        /// `8 × backoff_ms`. Zero disables sleeping.
        backoff_ms: u64,
    },
}

impl FailurePolicy {
    /// Retry each failing batch `retries` times with a 1 ms backoff base,
    /// then quarantine it.
    pub fn retry(retries: u32) -> FailurePolicy {
        FailurePolicy::RetryQuarantine { retries, backoff_ms: 1 }
    }
}

/// A mini-batch that exhausted its retries: parked in the pipeline's
/// dead-letter queue with everything needed to diagnose and re-fold it.
#[derive(Debug, Clone)]
pub struct QuarantinedBatch {
    /// Name of the view whose maintenance failed.
    pub view: String,
    /// Zero-based index of the batch within its `maintain` call.
    pub batch_index: usize,
    /// Delta records in the batch.
    pub records: usize,
    /// Attempts made (1 + retries).
    pub attempts: u32,
    /// The last failure's diagnosis.
    pub error: String,
    /// The batch's delta records, retained for re-folding.
    pub deltas: Deltas,
}

/// A mini-batch maintenance pipeline executing *real* maintenance plans on
/// a worker pool.
#[derive(Debug, Clone)]
pub struct BatchPipeline {
    /// Shared worker pool.
    pub pool: Arc<WorkerPool>,
    /// Maximum delta chunks (map tasks) per batch.
    pub partitions: usize,
    /// Run every change plan through the optimizer before evaluation
    /// (disabled by the benchmarks to measure the optimizer's contribution).
    pub optimize_plans: bool,
    /// Base-table statistics catalog; when set (and `optimize_plans` is
    /// on), batch plans additionally get cost-based join reordering, with
    /// the delta-chunk and stale-view leaves overlaid on the fly.
    pub catalog: Option<Arc<Catalog>>,
    /// Morsel size for intra-plan parallelism. When set, the plans that
    /// run as a *single* task per batch — the sequential fallback
    /// maintenance plan of non-change-table views and the driver-side
    /// merge plan — execute morsel-parallel on the shared pool
    /// (`PhysicalPlan::run_parallel`), their scans split into row ranges
    /// that interleave with other sessions' tasks on the shared queue.
    /// `Some(0)` means "morsel-parallel, size auto-tuned": the size is
    /// derived per plan from the attached catalog's row counts (or the
    /// live tables when no catalog is attached), targeting ~64k values
    /// per column chunk ([`svc_relalg::exec::auto_morsel_size`]).
    /// Per-partition change plans keep their inter-plan fan-out (many
    /// small plans already saturate the pool).
    pub morsel_size: Option<usize>,
    /// Hash-partition count for join builds and set-op dedup inside the
    /// morsel-parallel plan runs above (the fallback maintenance plan and
    /// the merge fold); distinct from [`BatchPipeline::partitions`], which
    /// chunks *deltas* across change plans. `0` (the default) auto-tunes
    /// from the build input size
    /// ([`svc_relalg::exec::auto_partition_count`]); any value is rounded
    /// up to a power of two. Results are identical for every value — this
    /// is purely a parallelism/skew knob. Ignored when `morsel_size` is
    /// `None` (sequential plan runs build one map).
    pub join_partitions: usize,
    /// Optional span recorder: when attached, `maintain` records
    /// batch/fold spans into its ring buffer, exportable as chrome-trace
    /// JSON ([`TraceRecorder::chrome_trace_json`]). `None` (the default)
    /// records nothing.
    pub tracer: Option<Arc<TraceRecorder>>,
    /// What a failing mini-batch does: abort the call (strict, the
    /// default) or retry-then-quarantine (see [`FailurePolicy`]).
    pub policy: FailurePolicy,
    /// Dead-letter queue of quarantined batches, shared by clones like the
    /// cache.
    quarantine: Arc<Mutex<Vec<QuarantinedBatch>>>,
    /// Compiled per-partition change plans, cached across batches and
    /// `maintain` calls. Shared by clones (same pipeline, same cache);
    /// entries are keyed by the partitioning-epoch knobs and the attached
    /// catalog's identity — see [`CompileCache`].
    cache: Arc<Mutex<CompileCache>>,
    /// Live pipeline counters, shared by clones like the cache.
    counters: Arc<PipelineCounters>,
}

/// Live subsystem counters of one pipeline (shared across clones).
#[derive(Debug, Default)]
struct PipelineCounters {
    /// Delta records accepted by the current `maintain` call and not yet
    /// folded into the view (transient; 0 between calls).
    backlog: Gauge,
    /// Cumulative wall time of driver-side change-table folds, in ns.
    fold_ns: Counter,
    /// Change-table folds performed.
    folds: Counter,
    /// Batch plan sets compiled (the `plan_compiles` observable).
    compiles: Counter,
    /// Compile-cache hits.
    cache_hits: Counter,
    /// Compile-cache misses (each implies one compile).
    cache_misses: Counter,
    /// Batch re-attempts after transient failures (retry policy).
    retries: Counter,
    /// Batches moved to the dead-letter queue.
    quarantined: Counter,
    /// Successful recoveries: re-folded quarantined batches plus fallback
    /// recomputes.
    recoveries: Counter,
    /// Poisoned compile-cache locks recovered (cache flushed, poison
    /// cleared).
    cache_poisons: Counter,
}

/// A point-in-time snapshot of a pipeline's subsystem metrics.
#[derive(Debug, Clone)]
pub struct PipelineMetrics {
    /// Delta records accepted but not yet folded (0 when idle).
    pub backlog: i64,
    /// Cumulative driver-side fold wall time, in nanoseconds.
    pub fold_ns: u64,
    /// Change-table folds performed.
    pub folds: u64,
    /// Batch plan sets compiled.
    pub compiles: u64,
    /// Compile-cache hits.
    pub cache_hits: u64,
    /// Compile-cache misses.
    pub cache_misses: u64,
    /// Batch re-attempts after transient failures.
    pub retries: u64,
    /// Batches moved to the dead-letter queue.
    pub quarantined: u64,
    /// Successful recoveries (re-folded quarantined batches, fallback
    /// recomputes).
    pub recoveries: u64,
    /// Poisoned compile-cache locks recovered.
    pub cache_poisons: u64,
}

impl PipelineMetrics {
    /// Mean fold latency in nanoseconds (0 when no fold ran yet).
    pub fn mean_fold_ns(&self) -> u64 {
        self.fold_ns.checked_div(self.folds).unwrap_or(0)
    }
}

/// Zeroes the backlog gauge when a `maintain` call exits, on every path
/// (including `?` early returns).
struct BacklogGuard<'a>(&'a Gauge);

impl Drop for BacklogGuard<'_> {
    fn drop(&mut self) {
        self.0.set(0);
    }
}

/// The cache of compiled batch plans.
///
/// Everything a compiled plan set depends on is part of its key: the
/// partition count and optimizer toggle (the *partitioning epoch* knobs —
/// a repartition therefore never sees stale plans, it simply keys to a
/// fresh entry and recompiles exactly once), the canonical view plan and
/// stale type, the batch's chunk signature (chunk count and, per chunk,
/// which tables have pending insertions/deletions), and the statistics
/// catalog the entry was optimized under — by *identity*, since cached
/// join orders reflect that catalog's statistics. Keying rather than
/// clearing lets two live pipeline clones with different knobs — or
/// different catalogs — share the cache without thrashing each other. (An
/// earlier revision held a single catalog and flushed every entry when a
/// different one showed up; two clones attached to different catalogs
/// then wiped each other's entries on every lookup and recompiled every
/// batch forever.)
#[derive(Debug, Default)]
struct CompileCache {
    /// Catalogs with live entries, retained so the address component of
    /// entry keys stays unambiguous: a dropped catalog's allocation can
    /// never be recycled into a new catalog that false-hits old entries.
    catalogs: Vec<Arc<Catalog>>,
    /// Compiled plan sets, keyed by catalog identity then plan-set key.
    entries: HashMap<usize, HashMap<String, Arc<Vec<PhysicalPlan>>>>,
}

/// Entry cap: one long-lived pipeline maintaining many views over
/// shifting chunk signatures must not grow without bound. A full flush at
/// the cap is crude but safe — everything recompiles at most once after.
const COMPILE_CACHE_CAP: usize = 64;

/// The identity token of a catalog binding: the `Arc` allocation address,
/// or 0 for "no catalog" (never a valid allocation address).
fn catalog_token(catalog: &Option<Arc<Catalog>>) -> usize {
    catalog.as_ref().map_or(0, |c| Arc::as_ptr(c) as usize)
}

impl CompileCache {
    /// The entry for `key` under the caller's catalog.
    fn lookup(
        &mut self,
        catalog: &Option<Arc<Catalog>>,
        key: &str,
    ) -> Option<Arc<Vec<PhysicalPlan>>> {
        self.entries.get(&catalog_token(catalog))?.get(key).cloned()
    }

    /// Insert a freshly compiled plan set.
    fn store(
        &mut self,
        catalog: &Option<Arc<Catalog>>,
        key: String,
        plans: Arc<Vec<PhysicalPlan>>,
    ) {
        if self.entries.values().map(HashMap::len).sum::<usize>() >= COMPILE_CACHE_CAP {
            self.entries.clear();
            self.catalogs.clear();
        }
        if let Some(c) = catalog {
            if !self.catalogs.iter().any(|held| Arc::ptr_eq(held, c)) {
                self.catalogs.push(c.clone());
            }
        }
        self.entries.entry(catalog_token(catalog)).or_default().insert(key, plans);
    }
}

impl BatchPipeline {
    /// Default pipeline on `workers` threads with `2 × workers` partitions.
    pub fn new(workers: usize) -> BatchPipeline {
        BatchPipeline {
            pool: Arc::new(WorkerPool::new(workers)),
            partitions: workers * 2,
            optimize_plans: true,
            catalog: None,
            morsel_size: None,
            join_partitions: 0,
            tracer: None,
            policy: FailurePolicy::default(),
            quarantine: Arc::default(),
            cache: Arc::default(),
            counters: Arc::default(),
        }
    }

    /// A pipeline sharing an existing pool.
    pub fn on_pool(pool: Arc<WorkerPool>) -> BatchPipeline {
        let partitions = pool.workers() * 2;
        BatchPipeline {
            pool,
            partitions,
            optimize_plans: true,
            catalog: None,
            morsel_size: None,
            join_partitions: 0,
            tracer: None,
            policy: FailurePolicy::default(),
            quarantine: Arc::default(),
            cache: Arc::default(),
            counters: Arc::default(),
        }
    }

    /// Attach a statistics catalog (see [`BatchPipeline::catalog`]).
    pub fn with_catalog(mut self, catalog: Arc<Catalog>) -> BatchPipeline {
        self.catalog = Some(catalog);
        self
    }

    /// Set the failure policy (see [`FailurePolicy`]).
    pub fn with_policy(mut self, policy: FailurePolicy) -> BatchPipeline {
        self.policy = policy;
        self
    }

    /// Resolve the configured [`BatchPipeline::morsel_size`] for one plan
    /// run over `leaves` (plus, optionally, the stale view the plan also
    /// scans): `None` stays sequential, an explicit size passes through,
    /// and `Some(0)` derives a size from the catalog's row counts —
    /// falling back to the live tables when no catalog is attached — via
    /// [`svc_relalg::exec::auto_morsel_size`] on the largest input.
    fn resolved_morsel(
        &self,
        db: &Database,
        leaves: &[&str],
        stale: Option<&svc_storage::Table>,
    ) -> Option<usize> {
        let morsel = self.morsel_size?;
        if morsel != 0 {
            return Some(morsel);
        }
        let mut best = (0usize, 1usize);
        let mut note = |rows: usize, width: usize| {
            if rows > best.0 {
                best = (rows, width);
            }
        };
        for leaf in leaves {
            match self.catalog.as_deref().and_then(|c| c.stats(leaf)) {
                Some(s) => note(s.rows as usize, s.schema.len()),
                None => {
                    if let Ok(t) = db.table(leaf) {
                        note(t.len(), t.schema().len());
                    }
                }
            }
        }
        if let Some(t) = stale {
            note(t.len(), t.schema().len());
        }
        Some(svc_relalg::exec::auto_morsel_size(best.0, best.1))
    }

    /// How many batch-plan sets this pipeline has compiled so far — the
    /// observable behind the "compile at most once per partitioning epoch"
    /// guarantee (tests assert it stays flat across repeated batches and
    /// resets work after a repartition). Thin shim over the pipeline's
    /// telemetry counters ([`BatchPipeline::metrics`]).
    pub fn plan_compiles(&self) -> usize {
        self.counters.compiles.get() as usize
    }

    /// Snapshot the pipeline's subsystem metrics: current delta backlog,
    /// cumulative fold latency, and compile-cache hit/miss counts.
    /// Lock-free; shared across pipeline clones (same cache, same
    /// counters).
    pub fn metrics(&self) -> PipelineMetrics {
        let c = &*self.counters;
        PipelineMetrics {
            backlog: c.backlog.get(),
            fold_ns: c.fold_ns.get(),
            folds: c.folds.get(),
            compiles: c.compiles.get(),
            cache_hits: c.cache_hits.get(),
            cache_misses: c.cache_misses.get(),
            retries: c.retries.get(),
            quarantined: c.quarantined.get(),
            recoveries: c.recoveries.get(),
            cache_poisons: c.cache_poisons.get(),
        }
    }

    /// Lock the compile cache, recovering from poison: a panic while the
    /// cache was held may have left a half-written entry behind, so the
    /// poisoned contents are dropped wholesale (everything recompiles at
    /// most once — the same crude-but-safe move the entry cap makes) and
    /// the poison is cleared so later locks return to the fast path.
    fn cache_lock(&self) -> MutexGuard<'_, CompileCache> {
        match self.cache.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                let mut guard = poisoned.into_inner();
                guard.entries.clear();
                guard.catalogs.clear();
                self.cache.clear_poison();
                self.counters.cache_poisons.inc();
                guard
            }
        }
    }

    /// The dead-letter queue: batches that exhausted their retries, with
    /// diagnoses. Shared across pipeline clones.
    pub fn quarantined(&self) -> Vec<QuarantinedBatch> {
        self.quarantine_lock().clone()
    }

    /// The dead-letter queue itself must survive poisoning (it is written
    /// from paths that run next to injected panics).
    fn quarantine_lock(&self) -> MutexGuard<'_, Vec<QuarantinedBatch>> {
        self.quarantine.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Bring `view` up to date with respect to `pending` (not consumed —
    /// the caller commits the deltas to the base tables when the
    /// maintenance period ends), processing at most `batch_size` delta
    /// records per mini-batch.
    ///
    /// Mini-batching applies when the view is change-table eligible for the
    /// pending deltas and the exactness condition of
    /// [`chunk_parallel_exact`] holds (change-table contributions of
    /// disjoint delta subsets are then independent and additive). Otherwise
    /// the whole delta set runs as a single batch — through the full
    /// sequential maintenance plan for non-eligible views — still as real
    /// plans on the pool.
    pub fn maintain(
        &self,
        db: &Database,
        view: &mut MaterializedView,
        pending: &Deltas,
        batch_size: usize,
    ) -> Result<BatchRun> {
        if batch_size == 0 {
            return Err(StorageError::Invalid("batch_size must be at least 1".into()));
        }
        let start = Instant::now();
        let canonical = view.canonical().clone();
        // Deltas of tables the view never reads cannot affect it: scope the
        // pass (and the throughput accounting) to the view's own leaves, so
        // unrelated pending tables are a no-op rather than dead weight.
        let pending = pending.restricted_to(&canonical.plan.leaf_tables());
        let mut run = BatchRun { records: pending.len(), ..Default::default() };
        if pending.is_empty() {
            return Ok(run);
        }

        // Backlog gauge: records accepted by this call, decremented as
        // batches fold; the guard zeroes it on every exit (including `?`).
        self.counters.backlog.set(run.records as i64);
        let _backlog_reset = BacklogGuard(&self.counters.backlog);
        let _maintain_span = self.tracer.as_deref().map(|t| t.span("maintain", "pipeline"));

        let info = svc_ivm::DeltaInfo::of(&pending);
        let eligible =
            canonical.agg.is_some() && canonical.change_table_eligible(info.has_deletions());
        // The catalog and the driver-side merge plan depend only on the
        // canonical view and the stale schema/key, which are invariant
        // across every batch of this call — build them once.
        let cat = MaintCatalog {
            db,
            stale: Derived {
                schema: view.table().schema().clone(),
                key: view.table().key().to_vec(),
            },
        };
        if !eligible {
            // Fallback: the whole pending set through the view's
            // maintenance plan — a real plan (delta-apply or recompute).
            // Splitting it into mini-batches would be unsound: each batch's
            // plan reads the *original* base tables, so earlier batches
            // would be forgotten.
            let (plan, _kind) = maintenance_plan(&canonical, &cat, &info)?;
            let committed = match self.policy {
                FailurePolicy::Strict => {
                    let result = self
                        .run_fallback_plan(db, view, &cat, &canonical, &plan, &pending)
                        .map_err(|e| {
                            StorageError::Invalid(format!(
                                "fallback maintenance failed; view kept its pre-maintain \
                                     epoch, deltas unconsumed: {e}"
                            ))
                        })?;
                    view.set_table(result);
                    true
                }
                FailurePolicy::RetryQuarantine { retries, backoff_ms } => {
                    let attempt = self.with_retries(retries, backoff_ms, &mut run, || {
                        self.run_fallback_plan(db, view, &cat, &canonical, &plan, &pending)
                    });
                    match attempt {
                        Ok(result) => {
                            view.set_table(result);
                            true
                        }
                        Err(e) => {
                            self.quarantine_batch(view, 0, pending.clone(), retries + 1, &e);
                            run.quarantined += 1;
                            false
                        }
                    }
                }
            };
            run.batches = 1;
            run.plans_evaluated = usize::from(committed);
            run.fallback_batches = 1;
            run.seconds = start.elapsed().as_secs_f64();
            return Ok(run);
        }

        // The merge plan is invariant across batches: optimize and compile
        // it once per call, run it once per change-table fold.
        let merge = {
            let (m, _) = optimize(&merge_change_plan(&canonical, &cat)?, &cat)?;
            compile(&m, &cat)?
        };
        // Cache identity of this view's batch plans: the generated plan
        // set is a pure function of the canonical plan and the stale type
        // (plus the chunk signature appended per batch) — and the compiled
        // plans additionally bake in the base-table shapes their leaves
        // validate against at run time. Fingerprinting those shapes here
        // means a base-schema (or key) change keys to a fresh entry and
        // recompiles exactly once, instead of the cached plans failing
        // leaf validation forever.
        let view_key = {
            use std::fmt::Write;
            let mut key = format!("{:?}|{:?}", canonical.plan, cat.stale);
            for leaf in canonical.plan.leaf_tables() {
                if let Ok(t) = db.table(leaf) {
                    let _ = write!(key, "|{leaf}:[{}]k{:?}", t.schema(), t.key());
                }
            }
            key
        };
        // Batch boundaries obey the same exactness condition as chunk
        // parallelism: every batch's change table reads the original base
        // state, so batches (like chunks) must not interact.
        let exact = chunk_parallel_exact(&canonical.plan, &pending);
        let n_batches = if exact { run.records.div_ceil(batch_size) } else { 1 };
        // Shadow fold: batches accumulate into a local table and the view
        // commits exactly once at the end, so an error (or panic) anywhere
        // in the loop leaves the view at its pre-maintain epoch with every
        // delta unconsumed — no failure mode exposes a partial fold.
        let batches = pending.partition(n_batches);
        let total = batches.len();
        let mut folded: Option<Table> = None;
        for (idx, batch) in batches.into_iter().enumerate() {
            let records = batch.len();
            let _batch_span = self.tracer.as_deref().map(|t| t.span("batch", "pipeline"));
            if let Some((next, plans)) = self.fold_one_batch(
                db,
                view,
                &canonical,
                &cat,
                &merge,
                batch,
                exact,
                &view_key,
                folded.as_ref(),
                idx,
                total,
                &mut run,
            )? {
                folded = Some(next);
                run.plans_evaluated += plans;
            }
            self.counters.backlog.add(-(records as i64));
            run.batches += 1;
        }
        if let Some(table) = folded {
            view.set_table(table);
        }
        run.seconds = start.elapsed().as_secs_f64();
        Ok(run)
    }

    /// Fold one mini-batch into the shadow table under the pipeline's
    /// failure policy. Returns the folded-so-far table and the plan count,
    /// or `Ok(None)` when the batch was quarantined (retry policy only).
    #[allow(clippy::too_many_arguments)]
    fn fold_one_batch(
        &self,
        db: &Database,
        view: &mut MaterializedView,
        canonical: &svc_ivm::Canonical,
        cat: &MaintCatalog<'_>,
        merge: &PhysicalPlan,
        batch: Deltas,
        chunk_parallel: bool,
        view_key: &str,
        folded: Option<&Table>,
        idx: usize,
        total: usize,
        run: &mut BatchRun,
    ) -> Result<Option<(Table, usize)>> {
        match self.policy {
            FailurePolicy::Strict => {
                let stale = folded.unwrap_or_else(|| view.table());
                self.run_change_batch(
                    db,
                    canonical,
                    cat,
                    merge,
                    batch,
                    chunk_parallel,
                    view_key,
                    stale,
                )
                .map(Some)
                .map_err(|e| {
                    StorageError::Invalid(format!(
                        "mini-batch {}/{} failed; view kept its pre-maintain epoch, deltas \
                             unconsumed: {e}",
                        idx + 1,
                        total
                    ))
                })
            }
            FailurePolicy::RetryQuarantine { retries, backoff_ms } => {
                let stale = folded.unwrap_or_else(|| view.table());
                let attempt = self.with_retries(retries, backoff_ms, run, || {
                    self.run_change_batch(
                        db,
                        canonical,
                        cat,
                        merge,
                        batch.clone(),
                        chunk_parallel,
                        view_key,
                        stale,
                    )
                });
                match attempt {
                    Ok(folded) => Ok(Some(folded)),
                    Err(e) => {
                        self.quarantine_batch(view, idx, batch, retries + 1, &e);
                        run.quarantined += 1;
                        Ok(None)
                    }
                }
            }
        }
    }

    /// Run `attempt` up to `1 + retries` times, sleeping a bounded linear
    /// backoff between tries. Panics inside an attempt are caught at this
    /// boundary and treated as transient failures (the pool already
    /// isolates worker panics per session; this additionally covers
    /// driver-side folds and compilation).
    fn with_retries<T>(
        &self,
        retries: u32,
        backoff_ms: u64,
        run: &mut BatchRun,
        attempt: impl Fn() -> Result<T>,
    ) -> Result<T> {
        let mut last = StorageError::Invalid("batch never attempted".into());
        for attempt_no in 0..=retries {
            if attempt_no > 0 {
                run.retries += 1;
                self.counters.retries.inc();
                if backoff_ms > 0 {
                    let sleep = backoff_ms
                        .saturating_mul(u64::from(attempt_no))
                        .min(backoff_ms.saturating_mul(8));
                    std::thread::sleep(Duration::from_millis(sleep));
                }
            }
            match catch_unwind(AssertUnwindSafe(&attempt)) {
                Ok(Ok(value)) => return Ok(value),
                Ok(Err(e)) => last = e,
                Err(payload) => {
                    last = StorageError::Invalid(format!(
                        "batch task panicked: {}",
                        panic_text(payload.as_ref())
                    ));
                }
            }
        }
        Err(last)
    }

    /// Move a failed batch to the dead-letter queue and mark the view
    /// dirty (its table no longer reflects all accepted deltas).
    fn quarantine_batch(
        &self,
        view: &mut MaterializedView,
        batch_index: usize,
        deltas: Deltas,
        attempts: u32,
        error: &StorageError,
    ) {
        self.counters.quarantined.inc();
        view.mark_dirty();
        self.quarantine_lock().push(QuarantinedBatch {
            view: view.name.clone(),
            batch_index,
            records: deltas.len(),
            attempts,
            error: error.to_string(),
            deltas,
        });
    }

    /// Re-drive every quarantined batch belonging to `view` through
    /// [`BatchPipeline::maintain`] (sound because change-table folds of
    /// disjoint delta subsets are additive, so a late fold lands the same
    /// state). Returns the number of batches recovered; batches that fail
    /// again under the current policy are re-quarantined (retry policy) or
    /// put back verbatim (strict policy, which also propagates the error).
    /// Clears the view's dirty flag once its queue is empty.
    pub fn retry_quarantined(
        &self,
        db: &Database,
        view: &mut MaterializedView,
        batch_size: usize,
    ) -> Result<usize> {
        let mine: Vec<QuarantinedBatch> = {
            let mut q = self.quarantine_lock();
            let (mine, rest) =
                std::mem::take(&mut *q).into_iter().partition(|e| e.view == view.name);
            *q = rest;
            mine
        };
        let mut recovered = 0;
        let mut entries = mine.into_iter();
        for entry in entries.by_ref() {
            match self.maintain(db, view, &entry.deltas, batch_size.max(1)) {
                Ok(inner) if inner.quarantined == 0 => {
                    recovered += 1;
                    self.counters.recoveries.inc();
                }
                Ok(_) => {} // re-quarantined by the nested maintain call
                Err(e) => {
                    let mut q = self.quarantine_lock();
                    q.push(entry);
                    q.extend(entries);
                    return Err(e);
                }
            }
        }
        if !self.quarantine_lock().iter().any(|e| e.view == view.name) {
            view.mark_clean();
        }
        Ok(recovered)
    }

    /// Last-resort recovery: recompute the view fresh over base tables plus
    /// `pending` (which must include the deltas of any quarantined batches),
    /// commit the result, and drop the view's dead-letter entries. Always
    /// converges regardless of what state the quarantined folds were in.
    pub fn recover_via_recompute(
        &self,
        db: &Database,
        view: &mut MaterializedView,
        pending: &Deltas,
    ) -> Result<()> {
        let fresh = view.recompute_fresh(db, pending)?;
        view.set_table(fresh);
        self.quarantine_lock().retain(|e| e.view != view.name);
        view.mark_clean();
        self.counters.recoveries.inc();
        Ok(())
    }

    /// Run the whole pending set through the view's full maintenance plan
    /// (non-eligible views). With a morsel size set, this single plan runs
    /// morsel-parallel on the pool (a lone sequential plan is exactly where
    /// intra-plan parallelism pays); otherwise it runs as one pool task.
    /// Returns the new view table without committing it.
    fn run_fallback_plan(
        &self,
        db: &Database,
        view: &MaterializedView,
        cat: &MaintCatalog<'_>,
        canonical: &svc_ivm::Canonical,
        plan: &Plan,
        pending: &Deltas,
    ) -> Result<Table> {
        svc_fault::fail_point!(svc_fault::site::BATCH_FALLBACK, StorageError::Invalid);
        let bindings = maintenance_bindings(db, pending, view.table());
        // The maintenance plan reads the stale view and the plain
        // `__ins.T`/`__del.T` leaves; overlay stats for both.
        let scoped = if self.optimize_plans {
            self.catalog.as_deref().map(|c| {
                delta_leaf_stats(c, Some(view.table()), std::slice::from_ref(pending), false)
            })
        } else {
            None
        };
        let est = scoped.as_ref().map(|s| s.estimator());
        let est: Option<&dyn svc_relalg::optimizer::CardEstimator> =
            est.as_ref().map(|e| e as &dyn svc_relalg::optimizer::CardEstimator);
        if let Some(morsel) =
            self.resolved_morsel(db, &canonical.plan.leaf_tables(), Some(view.table()))
        {
            let optimized = if self.optimize_plans {
                match est {
                    Some(e) => optimize_with(plan, cat, e)?.0,
                    None => optimize(plan, cat)?.0,
                }
            } else {
                plan.clone()
            };
            svc_relalg::exec::compile_with(&optimized, cat, est)?.run_with(
                &bindings,
                svc_relalg::exec::ExecMode::morsel(self.pool.as_ref(), morsel)
                    .partitions(self.join_partitions),
            )
        } else if self.optimize_plans {
            Ok(self
                .pool
                .evaluate_plans_with(std::slice::from_ref(plan), &bindings, est)?
                .pop()
                .expect("one plan, one result"))
        } else {
            Ok(self
                .pool
                .evaluate_plans_raw(std::slice::from_ref(plan), &bindings)?
                .pop()
                .expect("one plan, one result"))
        }
    }

    /// Execute one change-table mini-batch against `stale` (the shadow
    /// table folded so far) without touching the view; returns the next
    /// shadow table and the plan count.
    #[allow(clippy::too_many_arguments)]
    fn run_change_batch(
        &self,
        db: &Database,
        canonical: &svc_ivm::Canonical,
        cat: &MaintCatalog<'_>,
        merge: &PhysicalPlan,
        batch: Deltas,
        chunk_parallel: bool,
        view_key: &str,
        stale: &Table,
    ) -> Result<(Table, usize)> {
        // Map stage: one signed change table per delta chunk, all plans
        // bound side by side (`Deltas::partition` never emits empty chunks,
        // so no worker slot is burned on a no-op partition). The batch is
        // consumed — partitioning moves rows into their chunks.
        let chunks = if chunk_parallel { batch.partition(self.partitions) } else { vec![batch] };
        let compiled = self.compiled_batch_plans(canonical, cat, &chunks, view_key)?;
        let mut bindings = Bindings::from_database(db);
        for (p, chunk) in chunks.iter().enumerate() {
            for (name, set) in chunk.iter() {
                bindings.bind(ins_leaf_at(name, p), &set.insertions);
                bindings.bind(del_leaf_at(name, p), &set.deletions);
            }
        }
        svc_fault::fail_point!(svc_fault::site::BATCH_EVALUATE, StorageError::Invalid);
        let changes = self.pool.run_compiled(&compiled, &bindings)?;

        // Reduce stage (driver): fold each change table into the shadow
        // table. The merge is associative for the change-table-eligible
        // merge rules, so chunk order does not matter.
        let fold_start = Instant::now();
        let _fold_span = self.tracer.as_deref().map(|t| t.span("fold", "pipeline"));
        let mut current: Option<Table> = None;
        for change in &changes {
            svc_fault::fail_point!(svc_fault::site::BATCH_FOLD, StorageError::Invalid);
            let stale_now: &Table = current.as_ref().unwrap_or(stale);
            let next = {
                let mut mb = Bindings::new();
                mb.bind(STALE_LEAF, stale_now);
                mb.bind(CHANGE_LEAF, change);
                // The merge plan's inputs are the stale view and one change
                // table; the view dominates, so it sizes the morsels.
                match self.resolved_morsel(db, &[], Some(stale_now)) {
                    Some(morsel) => merge.run_with(
                        &mb,
                        svc_relalg::exec::ExecMode::morsel(self.pool.as_ref(), morsel)
                            .partitions(self.join_partitions),
                    )?,
                    None => merge.run(&mb)?,
                }
            };
            current = Some(next);
        }
        self.counters.fold_ns.add(fold_start.elapsed().as_nanos() as u64);
        self.counters.folds.add(changes.len() as u64);
        // `Deltas::partition` never emits empty chunks and the batch is
        // non-empty, so at least one change table always folds.
        let folded = current.unwrap_or_else(|| stale.clone());
        Ok((folded, compiled.len()))
    }

    /// The compiled per-partition change plans for one batch: served from
    /// the epoch cache when this chunk signature was seen before, compiled
    /// (optimize → compile, once per plan) and cached otherwise.
    fn compiled_batch_plans(
        &self,
        canonical: &svc_ivm::Canonical,
        cat: &MaintCatalog<'_>,
        chunks: &[Deltas],
        view_key: &str,
    ) -> Result<Arc<Vec<PhysicalPlan>>> {
        use std::fmt::Write;
        // The generated plan set depends on the epoch knobs, the view, the
        // chunk count, and per chunk which tables have pending
        // insertions/deletions (the change-table expression prunes absent
        // delta sides). Record exactly that.
        let mut key = format!("p{}|o{}|{view_key}", self.partitions, u8::from(self.optimize_plans));
        for chunk in chunks {
            key.push(';');
            for (name, set) in chunk.iter() {
                let _ = write!(
                    key,
                    "{name}:{}{},",
                    u8::from(!set.insertions.is_empty()),
                    u8::from(!set.deletions.is_empty())
                );
            }
        }
        if let Some(hit) = self.cache_lock().lookup(&self.catalog, &key) {
            self.counters.cache_hits.inc();
            return Ok(hit);
        }
        self.counters.cache_misses.inc();
        svc_fault::fail_point!(svc_fault::site::BATCH_COMPILE, StorageError::Invalid);
        let _compile_span = self.tracer.as_deref().map(|t| t.span("compile", "pipeline"));

        let plans = batch_change_plans(canonical, cat, chunks)?;
        let compiled: Vec<PhysicalPlan> = if self.optimize_plans {
            // With a catalog attached, overlay stats for every chunk's
            // delta leaves (tiny tables — the build scan is noise) so the
            // per-partition change plans get cost-based join order too.
            // Change plans never read `__stale` (the merge plan does, and
            // it is optimized separately), so no view-wide stats build.
            // Optimization + compilation fan out on the pool: this is the
            // once-per-epoch cold path, but with many partitions it still
            // should not serialize on the driver.
            let scoped = self.catalog.as_deref().map(|c| delta_leaf_stats(c, None, chunks, true));
            let est = scoped.as_ref().map(|s| s.estimator());
            let est: Option<&dyn svc_relalg::optimizer::CardEstimator> =
                est.as_ref().map(|e| e as &dyn svc_relalg::optimizer::CardEstimator);
            self.pool.run_batch(plans.len(), |i| {
                let (optimized, _) = match est {
                    Some(e) => optimize_with(&plans[i], cat, e)?,
                    None => optimize(&plans[i], cat)?,
                };
                svc_relalg::exec::compile_with(&optimized, cat, est)
            })?
        } else {
            self.pool.run_batch(plans.len(), |i| compile(&plans[i], cat))?
        };
        let compiled = Arc::new(compiled);
        self.cache_lock().store(&self.catalog, key, compiled.clone());
        self.counters.compiles.inc();
        Ok(compiled)
    }

    /// Measure throughput across batch sizes on real plans (Figure 14a,
    /// plan-driven): each point maintains a fresh clone of `view` over the
    /// same pending deltas.
    pub fn throughput_curve(
        &self,
        db: &Database,
        view: &MaterializedView,
        pending: &Deltas,
        batch_sizes: &[usize],
    ) -> Result<Vec<ThroughputPoint>> {
        batch_sizes
            .iter()
            .map(|&b| {
                let mut v = view.clone();
                let run = self.maintain(db, &mut v, pending, b)?;
                Ok(ThroughputPoint { batch_size: b, throughput: run.throughput() })
            })
            .collect()
    }
}

/// Catalog overlay for the delta leaves a maintenance or batch plan reads:
/// one stats build per (small) delta table, plus the stale view when the
/// plan actually scans it. `suffixed` selects the partition-suffixed
/// `__ins.T@p` names of batch plans (one chunk per index).
fn delta_leaf_stats<'a>(
    catalog: &'a Catalog,
    stale: Option<&svc_storage::Table>,
    chunks: &[Deltas],
    suffixed: bool,
) -> svc_catalog::ScopedStats<'a> {
    let mut scoped = catalog.scoped();
    if let Some(stale) = stale {
        scoped.bind_table(STALE_LEAF, stale);
    }
    for (p, chunk) in chunks.iter().enumerate() {
        for (name, set) in chunk.iter() {
            let (ins, del) = if suffixed {
                (ins_leaf_at(name, p), del_leaf_at(name, p))
            } else {
                (ins_leaf(name), del_leaf(name))
            };
            scoped.bind_table(ins, &set.insertions);
            scoped.bind_table(del, &set.deletions);
        }
    }
    scoped
}

/// True iff evaluating per-chunk change tables independently is exact:
/// every chunk's delta plans must see base states that no *other* chunk
/// perturbs. Sufficient conditions checked here:
///
/// * at most one base table is touched, or the view input has no binary
///   operator (then untouched tables' branches prune away), and
/// * no touched table is scanned by more than one leaf of the input
///   (self-joins and same-table set operations create cross-branch terms).
fn chunk_parallel_exact(canonical_plan: &Plan, batch: &Deltas) -> bool {
    let Plan::Aggregate { input, .. } = canonical_plan else {
        return false;
    };
    let touched: Vec<&str> = batch.touched_tables();
    if touched.len() > 1 && has_binary_node(input) {
        return false;
    }
    let mut scan_counts: BTreeMap<&str, usize> = BTreeMap::new();
    for leaf in input.leaf_tables() {
        *scan_counts.entry(leaf).or_default() += 1;
    }
    touched.iter().all(|t| scan_counts.get(t).copied().unwrap_or(0) <= 1)
}

fn has_binary_node(plan: &Plan) -> bool {
    match plan {
        Plan::Scan { .. } => false,
        Plan::Select { input, .. }
        | Plan::Project { input, .. }
        | Plan::Aggregate { input, .. }
        | Plan::Hash { input, .. } => has_binary_node(input),
        Plan::Join { .. }
        | Plan::Union { .. }
        | Plan::Intersect { .. }
        | Plan::Difference { .. } => true,
    }
}

/// The legacy synthetic mini-batch model: a fixed per-batch overhead (spun
/// on-CPU, not slept, so contention is real) plus per-record work executed
/// on a worker pool with a shuffle barrier. Kept for calibrating the
/// Figure 14 curves against an idealized Spark-like scheduler; the real
/// maintenance path is [`BatchPipeline`].
#[derive(Debug, Clone)]
pub struct SpinPipeline {
    /// Shared worker pool.
    pub pool: Arc<WorkerPool>,
    /// Fixed overhead per batch, in spin units (scheduling + shuffle setup).
    pub overhead_units: u64,
    /// Work per record, in spin units.
    pub per_record_units: u64,
    /// Number of map tasks per batch (partitions).
    pub partitions: usize,
}

impl SpinPipeline {
    /// Default pipeline on `workers` threads.
    pub fn new(workers: usize) -> SpinPipeline {
        SpinPipeline {
            pool: Arc::new(WorkerPool::new(workers)),
            overhead_units: 60_000,
            per_record_units: 12,
            partitions: workers * 2,
        }
    }

    /// Process `total_records` in batches of `batch_size`; returns the
    /// achieved throughput (records/s).
    pub fn run(&self, total_records: usize, batch_size: usize) -> f64 {
        assert!(batch_size > 0);
        let start = std::time::Instant::now();
        let mut remaining = total_records;
        while remaining > 0 {
            let this_batch = remaining.min(batch_size);
            remaining -= this_batch;
            // Fixed overhead: a serial task (driver-side scheduling).
            spin(self.overhead_units);
            // Map stage: records split across partitions, barrier at end.
            // Short final batches fill fewer partitions; empty ones are
            // skipped so no worker slot is burned on a no-op closure.
            let per_part = this_batch.div_ceil(self.partitions);
            let unit = self.per_record_units;
            let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..self.partitions)
                .map(|p| per_part.min(this_batch.saturating_sub(p * per_part)))
                .filter(|&records| records > 0)
                .map(|records| {
                    Box::new(move || {
                        spin(records as u64 * unit);
                    }) as Box<dyn FnOnce() + Send>
                })
                .collect();
            // Reduce stage: one merge task per worker-pair (smaller).
            let merges: Vec<Box<dyn FnOnce() + Send>> = (0..self.partitions / 2)
                .map(|_| {
                    Box::new(move || {
                        spin(unit * 40);
                    }) as Box<dyn FnOnce() + Send>
                })
                .collect();
            self.pool.run_stages(vec![tasks, merges]);
        }
        total_records as f64 / start.elapsed().as_secs_f64()
    }

    /// Measure throughput across batch sizes (Figure 14a).
    pub fn throughput_curve(
        &self,
        total_records: usize,
        batch_sizes: &[usize],
    ) -> Vec<ThroughputPoint> {
        batch_sizes
            .iter()
            .map(|&b| ThroughputPoint { batch_size: b, throughput: self.run(total_records, b) })
            .collect()
    }

    /// Measure throughput with a second pipeline running concurrently on
    /// its own pool of equal size — the two-maintenance-threads setup of
    /// Figure 14b. Returns this pipeline's throughput.
    pub fn throughput_with_contention(&self, total_records: usize, batch_size: usize) -> f64 {
        let other = self.clone();
        let mut main_tp = 0.0;
        std::thread::scope(|s| {
            let handle = s.spawn(move || {
                other.run(total_records, batch_size);
            });
            main_tp = self.run(total_records, batch_size);
            handle.join().expect("concurrent pipeline panicked");
        });
        main_tp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svc_relalg::aggregate::{AggFunc, AggSpec};
    use svc_relalg::plan::JoinKind;
    use svc_relalg::scalar::col;
    use svc_storage::{DataType, Schema, Table, Value};

    fn db() -> Database {
        let mut db = Database::new();
        let mut video = Table::new(
            Schema::from_pairs(&[("videoId", DataType::Int), ("duration", DataType::Float)])
                .unwrap(),
            &["videoId"],
        )
        .unwrap();
        for v in 0..80i64 {
            video.insert(vec![Value::Int(v), Value::Float(0.5 + (v % 9) as f64)]).unwrap();
        }
        let mut log = Table::new(
            Schema::from_pairs(&[("sessionId", DataType::Int), ("videoId", DataType::Int)])
                .unwrap(),
            &["sessionId"],
        )
        .unwrap();
        for s in 0..2_000i64 {
            log.insert(vec![Value::Int(s), Value::Int((s * 13 + 7) % 80)]).unwrap();
        }
        db.create_table("video", video);
        db.create_table("log", log);
        db
    }

    fn visit_view() -> Plan {
        Plan::scan("log")
            .join(Plan::scan("video"), JoinKind::Inner, &[("videoId", "videoId")])
            .aggregate(
                &["videoId"],
                vec![
                    AggSpec::count_all("visits"),
                    AggSpec::new("avgDur", AggFunc::Avg, col("duration")),
                ],
            )
    }

    fn log_stream(db: &Database, n: i64) -> Deltas {
        let mut deltas = Deltas::new();
        for s in 2_000..2_000 + n {
            deltas.insert(db, "log", vec![Value::Int(s), Value::Int(s % 80)]).unwrap();
        }
        for s in 0..n / 10 {
            deltas.delete(db, "log", &vec![Value::Int(s * 7), Value::Null]).unwrap();
        }
        deltas
    }

    #[test]
    fn pipeline_matches_sequential_maintenance() {
        let db = db();
        let view = MaterializedView::create("v", visit_view(), &db).unwrap();
        let deltas = log_stream(&db, 600);
        let expected = view.recompute_fresh(&db, &deltas).unwrap();

        let pipeline = BatchPipeline::new(2);
        for batch_size in [97, 200, 1_000] {
            let mut v = view.clone();
            let run = pipeline.maintain(&db, &mut v, &deltas, batch_size).unwrap();
            assert!(
                v.table().approx_same_contents(&expected, 1e-9),
                "batch_size {batch_size}: pipeline diverged from recompute ({} vs {} rows)",
                v.len(),
                expected.len()
            );
            assert_eq!(run.records, deltas.len());
            assert_eq!(run.batches, deltas.len().div_ceil(batch_size));
            assert_eq!(run.fallback_batches, 0, "change-table path expected");
            assert!(run.plans_evaluated >= run.batches);
        }
    }

    #[test]
    fn pipeline_with_catalog_is_exact() {
        let db = db();
        let view = MaterializedView::create("v", visit_view(), &db).unwrap();
        let deltas = log_stream(&db, 500);
        let expected = view.recompute_fresh(&db, &deltas).unwrap();

        let pipeline = BatchPipeline::new(2).with_catalog(Arc::new(Catalog::build(&db)));
        let mut v = view;
        let run = pipeline.maintain(&db, &mut v, &deltas, 120).unwrap();
        assert!(
            v.table().approx_same_contents(&expected, 1e-9),
            "catalog-driven pipeline diverged from recompute"
        );
        assert_eq!(run.fallback_batches, 0);

        // The non-eligible fallback path with a catalog stays exact too.
        let med = Plan::scan("video").aggregate(
            &["videoId"],
            vec![AggSpec::new("medDur", AggFunc::Median, col("duration"))],
        );
        let mview = MaterializedView::create("m", med, &db).unwrap();
        let mut md = Deltas::new();
        for vid in 80..110i64 {
            md.insert(&db, "video", vec![Value::Int(vid), Value::Float(1.5)]).unwrap();
        }
        let expected = mview.recompute_fresh(&db, &md).unwrap();
        let mut mv = mview;
        let run = pipeline.maintain(&db, &mut mv, &md, 10).unwrap();
        assert!(mv.table().approx_same_contents(&expected, 1e-9));
        assert_eq!(run.fallback_batches, run.batches);
    }

    #[test]
    fn pipeline_without_optimizer_is_still_exact() {
        let db = db();
        let view = MaterializedView::create("v", visit_view(), &db).unwrap();
        let deltas = log_stream(&db, 300);
        let expected = view.recompute_fresh(&db, &deltas).unwrap();

        let mut pipeline = BatchPipeline::new(2);
        pipeline.optimize_plans = false;
        let mut v = view;
        pipeline.maintain(&db, &mut v, &deltas, 100).unwrap();
        assert!(v.table().approx_same_contents(&expected, 1e-9));
    }

    #[test]
    fn non_change_table_views_fall_back_to_sequential_plans() {
        let db = db();
        // Median never merges: every batch must use the recompute fallback.
        let def = Plan::scan("video").aggregate(
            &["videoId"],
            vec![AggSpec::new("medDur", AggFunc::Median, col("duration"))],
        );
        let view = MaterializedView::create("v", def, &db).unwrap();
        let mut deltas = Deltas::new();
        for v in 80..120i64 {
            deltas.insert(&db, "video", vec![Value::Int(v), Value::Float(3.0)]).unwrap();
        }
        let expected = view.recompute_fresh(&db, &deltas).unwrap();

        let pipeline = BatchPipeline::new(2);
        let mut v = view;
        let run = pipeline.maintain(&db, &mut v, &deltas, 10).unwrap();
        assert!(v.table().approx_same_contents(&expected, 1e-9));
        assert_eq!(run.fallback_batches, run.batches);
    }

    #[test]
    fn multi_table_batches_stay_exact_via_single_chunk() {
        let db = db();
        let view = MaterializedView::create("v", visit_view(), &db).unwrap();
        // Touch both join sides in one delta set: the exactness guard must
        // serialize the chunking (cross-chunk join terms would be lost).
        let mut deltas = Deltas::new();
        for s in 2_000..2_200i64 {
            deltas.insert(&db, "log", vec![Value::Int(s), Value::Int(s % 90)]).unwrap();
        }
        for vid in 80..90i64 {
            deltas.insert(&db, "video", vec![Value::Int(vid), Value::Float(2.5)]).unwrap();
        }
        assert!(!chunk_parallel_exact(&view.canonical().plan, &deltas));
        let expected = view.recompute_fresh(&db, &deltas).unwrap();

        let pipeline = BatchPipeline::new(2);
        let mut v = view;
        let run = pipeline.maintain(&db, &mut v, &deltas, 1_000).unwrap();
        assert!(v.table().approx_same_contents(&expected, 1e-9));
        assert_eq!(run.plans_evaluated, run.batches, "one chunk per batch");
    }

    #[test]
    fn deltas_of_unrelated_tables_are_ignored_not_an_error() {
        // Regression (review finding): pending deltas for a table the view
        // never reads used to produce view-empty chunks and fail with
        // "delta chunk N is empty"; they must be scoped out instead.
        let mut db = db();
        let mut other = Table::new(
            Schema::from_pairs(&[("id", DataType::Int), ("v", DataType::Int)]).unwrap(),
            &["id"],
        )
        .unwrap();
        for i in 0..10i64 {
            other.insert(vec![Value::Int(i), Value::Int(i)]).unwrap();
        }
        db.create_table("other", other);

        let view = MaterializedView::create("v", visit_view(), &db).unwrap();
        let mut deltas = log_stream(&db, 30);
        for i in 100..140i64 {
            deltas.insert(&db, "other", vec![Value::Int(i), Value::Int(0)]).unwrap();
        }
        let expected = view.recompute_fresh(&db, &deltas).unwrap();

        let pipeline = BatchPipeline::new(3);
        let mut v = view;
        let run = pipeline.maintain(&db, &mut v, &deltas, 10).unwrap();
        assert!(v.table().approx_same_contents(&expected, 1e-9));
        let relevant = deltas.restricted_to(&["log", "video"]).len();
        assert_eq!(run.records, relevant, "throughput accounting scopes to the view's tables");

        // Only unrelated tables pending: a clean no-op.
        let mut unrelated = Deltas::new();
        unrelated.insert(&db, "other", vec![Value::Int(999), Value::Int(1)]).unwrap();
        let before = v.table().clone();
        let run = pipeline.maintain(&db, &mut v, &unrelated, 10).unwrap();
        assert_eq!(run.records, 0);
        assert_eq!(run.batches, 0);
        assert!(v.table().same_contents(&before));
    }

    #[test]
    fn batch_plans_compile_once_per_partitioning_epoch() {
        let db = db();
        let view = MaterializedView::create("v", visit_view(), &db).unwrap();
        // Insert-only stream: every batch has the same chunk signature, so
        // one compiled plan set serves all of them.
        let mut deltas = Deltas::new();
        for s in 2_000..2_400i64 {
            deltas.insert(&db, "log", vec![Value::Int(s), Value::Int(s % 80)]).unwrap();
        }
        let mut pipeline = BatchPipeline::new(2);
        let mut v = view.clone();
        let run = pipeline.maintain(&db, &mut v, &deltas, 50).unwrap();
        assert_eq!(run.batches, 8);
        assert_eq!(pipeline.plan_compiles(), 1, "one signature, one compile across 8 batches");

        // A second maintenance pass with the same shape replays the cache.
        let mut v2 = view.clone();
        pipeline.maintain(&db, &mut v2, &deltas, 50).unwrap();
        assert_eq!(pipeline.plan_compiles(), 1, "identical stream must not recompile");

        // Repartitioning starts a new epoch: the old plans are invalid
        // (different chunk count) and exactly one new set is compiled.
        pipeline.partitions = 3;
        let mut v3 = view.clone();
        pipeline.maintain(&db, &mut v3, &deltas, 60).unwrap();
        assert_eq!(pipeline.plan_compiles(), 2, "repartition compiles a fresh set");
        let expected = view.recompute_fresh(&db, &deltas).unwrap();
        assert!(v3.table().approx_same_contents(&expected, 1e-9));
        assert!(v.table().approx_same_contents(&expected, 1e-9));
        assert!(v2.table().approx_same_contents(&expected, 1e-9));
    }

    /// Two pipelines share one `WorkerPool` and maintain disjoint views
    /// from concurrent driver threads: the shared queue interleaves their
    /// tasks (plan batches from one, morsel tasks from the other) and both
    /// converge to the `recompute_fresh` ground truth.
    #[test]
    fn concurrent_pipelines_on_a_shared_pool_both_converge() {
        let db = db();
        let pool = Arc::new(WorkerPool::new(2));
        let p1 = BatchPipeline::on_pool(pool.clone());
        let mut p2 = BatchPipeline::on_pool(pool);
        // The second pipeline opts into morsel parallelism, so whole-plan
        // tasks and morsel tasks interleave on the same queue.
        p2.morsel_size = Some(64);

        let v1 = MaterializedView::create("v1", visit_view(), &db).unwrap();
        // Median never merges: v2 exercises the fallback maintenance plan,
        // which under `morsel_size` runs morsel-parallel on the pool.
        let v2def = Plan::scan("video").aggregate(
            &["videoId"],
            vec![AggSpec::new("medDur", svc_relalg::aggregate::AggFunc::Median, col("duration"))],
        );
        let v2 = MaterializedView::create("v2", v2def, &db).unwrap();

        let d1 = log_stream(&db, 600);
        let mut d2 = Deltas::new();
        for vid in 80..140i64 {
            d2.insert(&db, "video", vec![Value::Int(vid), Value::Float(1.0 + (vid % 7) as f64)])
                .unwrap();
        }
        let e1 = v1.recompute_fresh(&db, &d1).unwrap();
        let e2 = v2.recompute_fresh(&db, &d2).unwrap();

        std::thread::scope(|s| {
            let h1 = s.spawn(|| {
                let mut v = v1.clone();
                p1.maintain(&db, &mut v, &d1, 40).map(|run| (v, run))
            });
            let h2 = s.spawn(|| {
                let mut v = v2.clone();
                p2.maintain(&db, &mut v, &d2, 40).map(|run| (v, run))
            });
            let (m1, run1) = h1.join().expect("pipeline 1 panicked").unwrap();
            let (m2, run2) = h2.join().expect("pipeline 2 panicked").unwrap();
            assert!(m1.table().approx_same_contents(&e1, 1e-9), "pipeline 1 diverged");
            assert!(m2.table().approx_same_contents(&e2, 1e-9), "pipeline 2 diverged");
            assert!(run1.batches > 1, "pipeline 1 actually mini-batched");
            assert_eq!(run2.fallback_batches, run2.batches, "pipeline 2 took the fallback");
        });
    }

    /// An error (or worker panic) inside one pipeline's plans must not
    /// corrupt or deadlock a concurrent pipeline on the same pool —
    /// extending the PR 2 error-path tests to the shared-queue world.
    #[test]
    fn failure_in_one_pipeline_leaves_the_other_exact() {
        let db = db();
        let pool = Arc::new(WorkerPool::new(2));
        let healthy = BatchPipeline::on_pool(pool.clone());
        let view = MaterializedView::create("v", visit_view(), &db).unwrap();
        let deltas = log_stream(&db, 500);
        let expected = view.recompute_fresh(&db, &deltas).unwrap();

        std::thread::scope(|s| {
            let pool_err = pool.clone();
            let broken = s.spawn(move || {
                // A doomed batch: missing leaf (error path) …
                let b = Bindings::new();
                let err = pool_err.evaluate_plans(&[Plan::scan("missing")], &b);
                // … and a panicking morsel session (panic path).
                let panicked = pool_err.submit(6, &|i, _w| {
                    if i == 2 {
                        panic!("injected morsel panic");
                    }
                });
                (err, panicked)
            });
            let maintained = s.spawn(|| {
                let mut v = view.clone();
                healthy.maintain(&db, &mut v, &deltas, 60).map(|_| v)
            });
            let (err, panicked) = broken.join().expect("broken thread must not unwind");
            assert!(err.is_err(), "missing leaf must error");
            assert!(panicked.is_err(), "panicked session must error");
            let v = maintained.join().expect("healthy pipeline panicked").unwrap();
            assert!(
                v.table().approx_same_contents(&expected, 1e-9),
                "the healthy pipeline must stay exact despite the sick neighbor"
            );
        });
        // The pool survives both failures for the next maintenance round.
        let mut v = view;
        healthy.maintain(&db, &mut v, &deltas, 60).unwrap();
        assert!(v.table().approx_same_contents(&expected, 1e-9));
    }

    /// `morsel_size` changes scheduling only, never results: fallback and
    /// merge plans produce the same tables with and without it — including
    /// `Some(0)`, the catalog-derived auto-tuned size.
    #[test]
    fn morsel_size_is_result_invariant() {
        let db = db();
        let deltas = log_stream(&db, 400);
        let view = MaterializedView::create("v", visit_view(), &db).unwrap();
        let expected = view.recompute_fresh(&db, &deltas).unwrap();
        for morsel in [Some(0), Some(1), Some(33), Some(usize::MAX), None] {
            let mut pipeline = BatchPipeline::new(2);
            if morsel == Some(0) {
                // Auto-tuning should read row counts off the catalog when
                // one is attached (and off the live tables otherwise).
                pipeline = pipeline.with_catalog(Arc::new(Catalog::build(&db)));
            }
            pipeline.morsel_size = morsel;
            let mut v = view.clone();
            pipeline.maintain(&db, &mut v, &deltas, 80).unwrap();
            assert!(
                v.table().approx_same_contents(&expected, 1e-9),
                "morsel_size {morsel:?} changed the maintenance result"
            );
        }
    }

    /// `join_partitions` is a parallelism/skew knob only: every count
    /// (auto, 1, non-power-of-two, large) maintains to the same view.
    #[test]
    fn join_partitions_are_result_invariant() {
        let db = db();
        let deltas = log_stream(&db, 400);
        let view = MaterializedView::create("v", visit_view(), &db).unwrap();
        let expected = view.recompute_fresh(&db, &deltas).unwrap();
        for parts in [0usize, 1, 3, 8, 64] {
            let mut pipeline = BatchPipeline::new(2);
            pipeline.morsel_size = Some(16);
            pipeline.join_partitions = parts;
            let mut v = view.clone();
            pipeline.maintain(&db, &mut v, &deltas, 80).unwrap();
            assert!(
                v.table().approx_same_contents(&expected, 1e-9),
                "join_partitions {parts} changed the maintenance result"
            );
        }
    }

    #[test]
    fn zero_batch_size_is_rejected() {
        let db = db();
        let mut view = MaterializedView::create("v", visit_view(), &db).unwrap();
        let pipeline = BatchPipeline::new(2);
        let err = pipeline.maintain(&db, &mut view, &Deltas::new(), 0);
        assert!(matches!(err, Err(StorageError::Invalid(_))));
    }

    #[test]
    fn empty_deltas_are_a_noop() {
        let db = db();
        let mut view = MaterializedView::create("v", visit_view(), &db).unwrap();
        let before = view.table().clone();
        let pipeline = BatchPipeline::new(2);
        let run = pipeline.maintain(&db, &mut view, &Deltas::new(), 100).unwrap();
        assert_eq!(run.batches, 0);
        assert!(view.table().same_contents(&before));
    }

    #[test]
    fn short_final_batches_skip_empty_partitions() {
        let db = db();
        let view = MaterializedView::create("v", visit_view(), &db).unwrap();
        // 5 records over a pipeline with 8 partitions: at most 5 plans.
        let deltas = log_stream(&db, 5);
        let pipeline = BatchPipeline::new(4);
        let mut v = view.clone();
        let run = pipeline.maintain(&db, &mut v, &deltas, 1_000).unwrap();
        assert_eq!(run.batches, 1);
        assert!(
            run.plans_evaluated <= deltas.len(),
            "empty partitions must not spawn plans: {} plans for {} records",
            run.plans_evaluated,
            deltas.len()
        );
        let expected = view.recompute_fresh(&db, &deltas).unwrap();
        assert!(v.table().approx_same_contents(&expected, 1e-9));
    }

    #[test]
    fn spin_model_larger_batches_amortize_overhead() {
        let p = SpinPipeline::new(2);
        let n = 6_000;
        let small = p.run(n, 200);
        let large = p.run(n, 3_000);
        assert!(large > small * 1.5, "large batches should be much faster: {large} vs {small}");
    }

    #[test]
    fn spin_model_contention_reduces_throughput() {
        let p = SpinPipeline::new(2);
        let n = 4_000;
        let solo = p.run(n, 1_000);
        let contended = p.throughput_with_contention(n, 1_000);
        assert!(contended < solo, "two pipelines must contend: {contended} vs solo {solo}");
    }

    #[test]
    fn spin_model_throughput_curve_is_monotone_ish() {
        let p = SpinPipeline::new(2);
        let pts = p.throughput_curve(4_000, &[250, 1_000, 4_000]);
        assert_eq!(pts.len(), 3);
        assert!(pts[2].throughput > pts[0].throughput);
    }

    /// A panic while the compile cache is held must not wedge the pipeline
    /// forever: the poisoned contents are dropped and maintenance proceeds.
    #[test]
    fn poisoned_compile_cache_recovers() {
        let db = db();
        let view = MaterializedView::create("v", visit_view(), &db).unwrap();
        let deltas = log_stream(&db, 400);
        let expected = view.recompute_fresh(&db, &deltas).unwrap();

        let pipeline = BatchPipeline::new(2);
        // Warm the cache, then poison it: a thread panics mid-critical-section.
        let mut v = view.clone();
        pipeline.maintain(&db, &mut v, &deltas, 200).unwrap();
        let cache = pipeline.cache.clone();
        std::thread::spawn(move || {
            let _guard = cache.lock().unwrap();
            panic!("simulated panic while holding the compile cache");
        })
        .join()
        .unwrap_err();
        assert!(pipeline.cache.is_poisoned(), "setup: cache should be poisoned");

        let mut v = view;
        let run = pipeline.maintain(&db, &mut v, &deltas, 200).unwrap();
        assert!(v.table().approx_same_contents(&expected, 1e-9));
        assert!(run.batches > 0);
        assert!(!pipeline.cache.is_poisoned(), "poison must be cleared, not just bypassed");
        let m = pipeline.metrics();
        assert_eq!(m.cache_poisons, 1, "recovery should be counted exactly once");
        // The poisoned entries were dropped, so this maintain recompiled.
        assert!(m.cache_misses >= 2);
    }
}
