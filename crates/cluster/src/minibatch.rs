//! Mini-batch maintenance pipelines and the throughput / batch-size
//! trade-off (Section 7.6.2, Figure 14).
//!
//! Spark amortizes per-batch overheads (task scheduling, shuffle setup,
//! lineage checkpointing) over the records in the batch: "larger batch
//! sizes amortize overheads better" and small batches lose ~10x throughput.
//! [`BatchPipeline`] reproduces that with a fixed per-batch overhead (spun
//! on-CPU, not slept, so contention is real) plus per-record work executed
//! on a worker pool with a shuffle barrier. Running two pipelines
//! concurrently (IVM + SVC, Figure 14b) contends for the same pool.

use std::sync::Arc;

use crate::executor::{spin, WorkerPool};

/// One measured point of the throughput curve.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputPoint {
    /// Batch size in records.
    pub batch_size: usize,
    /// Records per second achieved.
    pub throughput: f64,
}

/// A mini-batch maintenance pipeline.
#[derive(Debug, Clone)]
pub struct BatchPipeline {
    /// Shared worker pool.
    pub pool: Arc<WorkerPool>,
    /// Fixed overhead per batch, in spin units (scheduling + shuffle setup).
    pub overhead_units: u64,
    /// Work per record, in spin units.
    pub per_record_units: u64,
    /// Number of map tasks per batch (partitions).
    pub partitions: usize,
}

impl BatchPipeline {
    /// Default pipeline on `workers` threads.
    pub fn new(workers: usize) -> BatchPipeline {
        BatchPipeline {
            pool: Arc::new(WorkerPool::new(workers)),
            overhead_units: 60_000,
            per_record_units: 12,
            partitions: workers * 2,
        }
    }

    /// Process `total_records` in batches of `batch_size`; returns the
    /// achieved throughput (records/s).
    pub fn run(&self, total_records: usize, batch_size: usize) -> f64 {
        assert!(batch_size > 0);
        let start = std::time::Instant::now();
        let mut remaining = total_records;
        while remaining > 0 {
            let this_batch = remaining.min(batch_size);
            remaining -= this_batch;
            // Fixed overhead: a serial task (driver-side scheduling).
            spin(self.overhead_units);
            // Map stage: records split across partitions, barrier at end.
            let per_part = this_batch.div_ceil(self.partitions);
            let unit = self.per_record_units;
            let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..self.partitions)
                .map(|p| {
                    let records = per_part.min(this_batch.saturating_sub(p * per_part));
                    Box::new(move || {
                        spin(records as u64 * unit);
                    }) as Box<dyn FnOnce() + Send>
                })
                .collect();
            // Reduce stage: one merge task per worker-pair (smaller).
            let merges: Vec<Box<dyn FnOnce() + Send>> = (0..self.partitions / 2)
                .map(|_| {
                    Box::new(move || {
                        spin(unit * 40);
                    }) as Box<dyn FnOnce() + Send>
                })
                .collect();
            self.pool.run_stages(vec![tasks, merges]);
        }
        total_records as f64 / start.elapsed().as_secs_f64()
    }

    /// Measure throughput across batch sizes (Figure 14a).
    pub fn throughput_curve(
        &self,
        total_records: usize,
        batch_sizes: &[usize],
    ) -> Vec<ThroughputPoint> {
        batch_sizes
            .iter()
            .map(|&b| ThroughputPoint { batch_size: b, throughput: self.run(total_records, b) })
            .collect()
    }

    /// Measure throughput with a second pipeline running concurrently on
    /// its own pool of equal size — the two-maintenance-threads setup of
    /// Figure 14b. Returns this pipeline's throughput.
    pub fn throughput_with_contention(&self, total_records: usize, batch_size: usize) -> f64 {
        let other = self.clone();
        let mut main_tp = 0.0;
        std::thread::scope(|s| {
            let handle = s.spawn(move || {
                other.run(total_records, batch_size);
            });
            main_tp = self.run(total_records, batch_size);
            handle.join().expect("concurrent pipeline panicked");
        });
        main_tp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn larger_batches_amortize_overhead() {
        let p = BatchPipeline::new(2);
        let n = 6_000;
        let small = p.run(n, 200);
        let large = p.run(n, 3_000);
        assert!(large > small * 1.5, "large batches should be much faster: {large} vs {small}");
    }

    #[test]
    fn contention_reduces_throughput() {
        let p = BatchPipeline::new(2);
        let n = 4_000;
        let solo = p.run(n, 1_000);
        let contended = p.throughput_with_contention(n, 1_000);
        assert!(contended < solo, "two pipelines must contend: {contended} vs solo {solo}");
    }

    #[test]
    fn throughput_curve_is_monotone_ish() {
        let p = BatchPipeline::new(2);
        let pts = p.throughput_curve(4_000, &[250, 1_000, 4_000]);
        assert_eq!(pts.len(), 3);
        assert!(pts[2].throughput > pts[0].throughput);
    }
}
