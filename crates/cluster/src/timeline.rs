//! Staleness-error timelines (Figure 15): drive the real SVC machinery
//! through a periodic-maintenance schedule and record the *maximum* query
//! error within maintenance periods.
//!
//! The paper's setup: at a fixed cluster throughput, IVM alone can refresh
//! the view every `B` records, while IVM sharing the cluster with an SVC
//! thread refreshes less often (larger effective batch) but gets cheap
//! sample cleanings in between. Larger sampling ratios clean less often
//! (same budget), so the max error is minimized at an intermediate ratio —
//! the optimum the paper finds at 3% (V2) and 6% (V5).

use svc_core::query::{relative_error, AggQuery};
use svc_core::{Method, SvcConfig, SvcView};
use svc_relalg::plan::Plan;
use svc_storage::{Database, Deltas, Result, StorageError};

use crate::minibatch::BatchPipeline;

/// Schedule parameters for one timeline run.
#[derive(Debug, Clone, Copy)]
pub struct TimelineConfig {
    /// Number of update chunks streamed.
    pub total_chunks: usize,
    /// Chunks between full IVM refreshes.
    pub ivm_period: usize,
    /// Chunks between SVC sample cleanings (`None` = SVC disabled).
    pub svc_period: Option<usize>,
    /// Sampling ratio for the SVC thread.
    pub ratio: f64,
    /// Seed for the SVC hash.
    pub seed: u64,
}

/// Maximum (and mean) relative error observed over the timeline.
#[derive(Debug, Clone, Copy)]
pub struct TimelineResult {
    /// Maximum per-chunk median query error.
    pub max_error: f64,
    /// Mean per-chunk median query error.
    pub mean_error: f64,
}

/// Run the schedule: stream chunks produced by `make_chunk`, refresh with
/// IVM every `ivm_period` chunks, clean the sample every `svc_period`
/// chunks (answering queries by SVC+CORR in between), and report the error
/// profile. `make_chunk(db, t)` must generate non-conflicting keys per `t`.
///
/// IVM refreshes run through a default plan-driven [`BatchPipeline`] on two
/// workers; use [`timeline_max_error_on`] to share a configured pipeline.
pub fn timeline_max_error(
    base: &Database,
    view_def: Plan,
    make_chunk: &mut dyn FnMut(&Database, usize) -> Result<Deltas>,
    queries: &[AggQuery],
    cfg: &TimelineConfig,
) -> Result<TimelineResult> {
    timeline_max_error_on(&BatchPipeline::new(2), base, view_def, make_chunk, queries, cfg)
}

/// [`timeline_max_error`] on an explicit mini-batch pipeline: every IVM
/// refresh drains the pending deltas through `pipeline` (real per-partition
/// change-table plans on the worker pool), then redraws the SVC sample.
pub fn timeline_max_error_on(
    pipeline: &BatchPipeline,
    base: &Database,
    view_def: Plan,
    make_chunk: &mut dyn FnMut(&Database, usize) -> Result<Deltas>,
    queries: &[AggQuery],
    cfg: &TimelineConfig,
) -> Result<TimelineResult> {
    if cfg.ivm_period == 0 {
        return Err(StorageError::Invalid(
            "timeline config: ivm_period must be at least 1 chunk".into(),
        ));
    }
    if cfg.svc_period == Some(0) {
        return Err(StorageError::Invalid(
            "timeline config: svc_period must be at least 1 chunk when enabled".into(),
        ));
    }
    if queries.is_empty() {
        return Err(StorageError::Invalid(
            "timeline config: at least one query is required to measure error".into(),
        ));
    }

    let mut db = base.clone();
    let svc_cfg = SvcConfig::with_ratio(cfg.ratio).reseeded(cfg.seed);
    let mut svc = SvcView::create("timeline", view_def, &db, svc_cfg)?;
    let mut pending = Deltas::new();
    // One stats build up front; afterwards the catalog rides along with
    // every delta commit, so the cleaning plans between refreshes get
    // cost-based join order without ever rescanning the base tables.
    let mut catalog = svc_catalog::Catalog::build(&db);

    // Current answers per query (refreshed by IVM or SVC cleanings).
    let mut answers: Vec<f64> =
        queries.iter().map(|q| svc.query_stale(q)).collect::<Result<_>>()?;

    let mut max_error = 0.0f64;
    let mut err_sum = 0.0f64;
    let mut err_n = 0usize;

    for t in 1..=cfg.total_chunks {
        let chunk = make_chunk(&db, t)?;
        pending.merge(chunk)?;

        if t % cfg.ivm_period == 0 {
            // Full refresh through the mini-batch pipeline: the view becomes
            // exact, the sample is redrawn, and the deltas commit — stats
            // first, so the catalog stays aligned with the base tables.
            let batch = pending.len().max(1);
            pipeline.maintain(&db, &mut svc.view, &pending, batch)?;
            svc.resample();
            catalog.commit_deltas(&mut db, &mut pending)?;
            for (a, q) in answers.iter_mut().zip(queries) {
                *a = svc.query_stale(q)?;
            }
        } else if let Some(p) = cfg.svc_period {
            if t % p == 0 {
                let cleaned = svc.clean_sample_with(&db, &pending, Some(&catalog))?;
                for (a, q) in answers.iter_mut().zip(queries) {
                    *a = svc.estimate_corr(&cleaned, q)?.value;
                }
            }
        }

        // Error of the current answers against the live truth.
        let mut errs: Vec<f64> = Vec::with_capacity(queries.len());
        for (a, q) in answers.iter().zip(queries) {
            let truth = svc.query_fresh_oracle(&db, &pending, q)?;
            errs.push(relative_error(*a, truth));
        }
        errs.sort_by(f64::total_cmp);
        let median = errs[errs.len() / 2];
        max_error = max_error.max(median);
        err_sum += median;
        err_n += 1;
    }

    Ok(TimelineResult { max_error, mean_error: err_sum / err_n.max(1) as f64 })
}

/// Convenience: answer mode used between refreshes (kept for reporting).
pub fn between_refresh_method(svc_enabled: bool) -> Method {
    if svc_enabled {
        Method::Correction
    } else {
        Method::Stale
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svc_relalg::aggregate::AggSpec;
    use svc_relalg::scalar::{col, lit};
    use svc_storage::{DataType, Schema, Table, Value};

    fn base_db() -> Database {
        let mut db = Database::new();
        let mut t = Table::new(
            Schema::from_pairs(&[
                ("id", DataType::Int),
                ("grp", DataType::Int),
                ("x", DataType::Float),
            ])
            .unwrap(),
            &["id"],
        )
        .unwrap();
        // Enough groups that a hash sample of the view is statistically
        // meaningful (the paper excludes small-cardinality views).
        for i in 0..4000i64 {
            t.insert(vec![Value::Int(i), Value::Int(i % 400), Value::Float((i % 97) as f64)])
                .unwrap();
        }
        db.create_table("events", t);
        db
    }

    fn view_def() -> Plan {
        Plan::scan("events").aggregate(
            &["grp"],
            vec![
                AggSpec::count_all("n"),
                AggSpec::new("total", svc_relalg::aggregate::AggFunc::Sum, col("x")),
            ],
        )
    }

    fn chunk(db: &Database, t: usize) -> Result<Deltas> {
        let mut deltas = Deltas::new();
        let base = 1_000_000 + (t as i64) * 1000;
        for i in 0..200i64 {
            deltas.insert(
                db,
                "events",
                vec![
                    Value::Int(base + i),
                    Value::Int(i % 100), // skew toward low groups
                    Value::Float(60.0),
                ],
            )?;
        }
        Ok(deltas)
    }

    fn queries() -> Vec<AggQuery> {
        vec![
            AggQuery::sum(col("total")).filter(col("grp").lt(lit(100i64))),
            AggQuery::sum(col("n")),
        ]
    }

    #[test]
    fn svc_between_refreshes_reduces_max_error() {
        let db = base_db();
        let ivm_only = timeline_max_error(
            &db,
            view_def(),
            &mut chunk,
            &queries(),
            &TimelineConfig {
                total_chunks: 12,
                ivm_period: 6,
                svc_period: None,
                ratio: 0.1,
                seed: 5,
            },
        )
        .unwrap();
        // SVC shares throughput: IVM period doubles, but the sample is
        // cleaned every 2 chunks.
        let with_svc = timeline_max_error(
            &db,
            view_def(),
            &mut chunk,
            &queries(),
            &TimelineConfig {
                total_chunks: 12,
                ivm_period: 12,
                svc_period: Some(2),
                ratio: 0.2,
                seed: 5,
            },
        )
        .unwrap();
        assert!(
            with_svc.max_error < ivm_only.max_error,
            "SVC should cap staleness error: {} vs {}",
            with_svc.max_error,
            ivm_only.max_error
        );
    }

    #[test]
    fn zero_ivm_period_is_an_error_not_a_panic() {
        // Regression: this used to divide by zero at `t % cfg.ivm_period`.
        let db = base_db();
        let err = timeline_max_error(
            &db,
            view_def(),
            &mut chunk,
            &queries(),
            &TimelineConfig {
                total_chunks: 3,
                ivm_period: 0,
                svc_period: None,
                ratio: 0.1,
                seed: 1,
            },
        );
        assert!(matches!(err, Err(svc_storage::StorageError::Invalid(_))), "{err:?}");
    }

    #[test]
    fn zero_svc_period_is_an_error_not_a_panic() {
        let db = base_db();
        let err = timeline_max_error(
            &db,
            view_def(),
            &mut chunk,
            &queries(),
            &TimelineConfig {
                total_chunks: 3,
                ivm_period: 2,
                svc_period: Some(0),
                ratio: 0.1,
                seed: 1,
            },
        );
        assert!(matches!(err, Err(svc_storage::StorageError::Invalid(_))), "{err:?}");
    }

    #[test]
    fn empty_queries_are_an_error_not_a_panic() {
        // Regression: this used to index `errs[0]` on an empty error vector.
        let db = base_db();
        let err = timeline_max_error(
            &db,
            view_def(),
            &mut chunk,
            &[],
            &TimelineConfig {
                total_chunks: 3,
                ivm_period: 2,
                svc_period: None,
                ratio: 0.1,
                seed: 1,
            },
        );
        assert!(matches!(err, Err(svc_storage::StorageError::Invalid(_))), "{err:?}");
    }

    #[test]
    fn errors_are_finite_and_bounded() {
        let db = base_db();
        let r = timeline_max_error(
            &db,
            view_def(),
            &mut chunk,
            &queries(),
            &TimelineConfig {
                total_chunks: 6,
                ivm_period: 3,
                svc_period: Some(1),
                ratio: 0.3,
                seed: 1,
            },
        )
        .unwrap();
        assert!(r.max_error.is_finite());
        assert!(r.mean_error <= r.max_error);
    }
}
