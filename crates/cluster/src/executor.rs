//! A worker pool with a **shared work queue**, stage barriers, and
//! per-worker busy-time accounting — the synchronous-parallelism model
//! whose idle gaps Figure 16 visualizes — plus the mini-batch
//! plan-evaluation entry point ([`WorkerPool::evaluate_plans`]) that routes
//! every plan through the `svc-relalg` optimizer exactly once before
//! scheduling it.
//!
//! The pool owns `workers` persistent threads that pull tasks off one
//! shared queue. Every entry point ([`WorkerPool::submit`],
//! [`WorkerPool::run_batch`], [`WorkerPool::run_stages`], and the
//! [`MorselScheduler`] impl behind `PhysicalPlan::run_parallel`) enqueues
//! into that same queue, so tasks from *concurrent* callers — two
//! `BatchPipeline`s maintaining different views, a plan batch and a
//! morsel-parallel merge — interleave across one set of workers instead of
//! each call spinning up its own thread scope. Task panics are caught on
//! the worker, reported as an error to the submitting session only, and
//! never corrupt or stall other sessions sharing the pool.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use svc_relalg::eval::Bindings;
use svc_relalg::exec::{compile, MorselScheduler, PhysicalPlan};
use svc_relalg::optimizer::{optimize, optimize_with, CardEstimator};
use svc_relalg::plan::Plan;
use svc_storage::{Result, StorageError, Table};
use svc_telemetry::{Counter, Gauge};

/// One recorded busy interval of one worker, in seconds since the trace
/// epoch.
#[derive(Debug, Clone, Copy)]
pub struct BusyInterval {
    /// Worker index.
    pub worker: usize,
    /// Interval start (s).
    pub start: f64,
    /// Interval end (s).
    pub end: f64,
}

/// The execution record of one or more stages on the pool.
#[derive(Debug, Clone, Default)]
pub struct ExecutionTrace {
    /// All busy intervals.
    pub intervals: Vec<BusyInterval>,
    /// Total wall-clock duration (s).
    pub wall: f64,
    /// Number of workers.
    pub workers: usize,
}

impl ExecutionTrace {
    /// Average CPU utilization in `buckets` equal time slices: the fraction
    /// of worker-time spent busy per slice (the Figure 16 series).
    pub fn utilization(&self, buckets: usize) -> Vec<f64> {
        assert!(buckets > 0);
        let mut out = vec![0.0; buckets];
        if self.wall <= 0.0 || self.workers == 0 {
            return out;
        }
        let width = self.wall / buckets as f64;
        for iv in &self.intervals {
            // Distribute the interval over the buckets it spans.
            let first = ((iv.start / width) as usize).min(buckets - 1);
            let last = ((iv.end / width) as usize).min(buckets - 1);
            for (b, slot) in out.iter_mut().enumerate().take(last + 1).skip(first) {
                let lo = (b as f64 * width).max(iv.start);
                let hi = ((b + 1) as f64 * width).min(iv.end);
                if hi > lo {
                    *slot += hi - lo;
                }
            }
        }
        let capacity = width * self.workers as f64;
        for v in out.iter_mut() {
            *v /= capacity;
        }
        out
    }

    /// Overall busy fraction.
    pub fn overall_utilization(&self) -> f64 {
        if self.wall <= 0.0 || self.workers == 0 {
            return 0.0;
        }
        let busy: f64 = self.intervals.iter().map(|iv| iv.end - iv.start).sum();
        busy / (self.wall * self.workers as f64)
    }
}

/// One unit of queued work: an index into its session's task range.
struct QueuedTask {
    session: Arc<Session>,
    index: usize,
}

/// The type-erased task body of one submission. Holds a raw pointer to the
/// caller's closure: [`WorkerPool::submit`] does not return until every
/// task of the session has finished executing, so the pointee strictly
/// outlives every dereference (the same contract `std::thread::scope`
/// enforces for borrowed spawns).
struct RawTask(*const (dyn Fn(usize, usize) + Sync));

// SAFETY: the pointee is `Sync` (shared calls from any thread are fine) and
// the pointer is only dereferenced while the submitting thread is parked in
// `submit`, keeping the closure alive. These impls, together with the
// erasing transmute in `submit` and the dereference in `worker_loop`, form
// the one audited unsafe block of the workspace (crate root carries
// `deny(unsafe_code)`; every other crate is `forbid(unsafe_code)`).
#[allow(unsafe_code)]
unsafe impl Send for RawTask {}
#[allow(unsafe_code)]
unsafe impl Sync for RawTask {}

impl std::fmt::Debug for RawTask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RawTask")
    }
}

/// One `submit` call's bookkeeping: the erased task body, the number of
/// tasks still outstanding, and whether any of them panicked.
#[derive(Debug)]
struct Session {
    run: RawTask,
    progress: Mutex<Progress>,
    done: Condvar,
}

#[derive(Debug)]
struct Progress {
    remaining: usize,
    /// The first panicking task's payload text, if any task panicked.
    panic_msg: Option<String>,
}

impl Session {
    /// Record one finished task; wakes the submitter when the session
    /// completes.
    fn complete(&self, panic_msg: Option<String>) {
        let mut p = self.progress.lock().expect("session progress poisoned");
        p.remaining -= 1;
        if p.panic_msg.is_none() {
            p.panic_msg = panic_msg;
        }
        if p.remaining == 0 {
            self.done.notify_all();
        }
    }
}

/// Human-readable text of a caught panic payload.
pub(crate) fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Live subsystem counters of one pool, on the shared telemetry
/// primitives: updated lock-free by workers and submitters, snapshotted
/// any time via [`WorkerPool::metrics`].
#[derive(Debug)]
struct PoolCounters {
    /// Tasks currently sitting in the shared queue (enqueued, not yet
    /// claimed by a worker).
    queue_depth: Gauge,
    /// Tasks executed to completion (including inline nested ones).
    tasks: Counter,
    /// `submit` sessions opened.
    sessions: Counter,
    /// Tasks that panicked (their sessions surfaced an error).
    panics: Counter,
    /// Per-worker cumulative busy time, in nanoseconds.
    busy_ns: Vec<Counter>,
}

/// A point-in-time snapshot of a pool's subsystem metrics.
#[derive(Debug, Clone)]
pub struct PoolMetrics {
    /// Tasks queued but not yet claimed at snapshot time.
    pub queue_depth: i64,
    /// Tasks executed to completion since pool creation.
    pub tasks: u64,
    /// `submit` sessions opened since pool creation.
    pub sessions: u64,
    /// Panicked tasks since pool creation.
    pub panics: u64,
    /// Cumulative busy nanoseconds, per worker.
    pub busy_ns: Vec<u64>,
}

impl PoolMetrics {
    /// Total busy time across all workers, in nanoseconds.
    pub fn total_busy_ns(&self) -> u64 {
        self.busy_ns.iter().sum()
    }
}

/// State shared between the pool handle and its worker threads.
#[derive(Debug)]
struct PoolShared {
    state: Mutex<PoolQueue>,
    work: Condvar,
    counters: PoolCounters,
}

#[derive(Debug)]
struct PoolQueue {
    queue: VecDeque<QueuedTask>,
    shutdown: bool,
}

impl std::fmt::Debug for QueuedTask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "QueuedTask({})", self.index)
    }
}

/// A stage task: claimed exactly once by the submitted closure.
type StageTask = Mutex<Option<Box<dyn FnOnce() + Send>>>;

thread_local! {
    /// `(pool id, worker index)` of the pool worker running on this thread,
    /// if any. Lets `submit` detect nested submission from one of its own
    /// workers and run inline instead of queueing (queueing could deadlock
    /// if every worker were parked waiting on a nested session).
    static CURRENT_WORKER: std::cell::Cell<Option<(usize, usize)>> =
        const { std::cell::Cell::new(None) };
}

static NEXT_POOL_ID: AtomicUsize = AtomicUsize::new(0);

/// A fixed-size worker pool: `workers` persistent threads pulling from one
/// shared task queue. Barrier-style entry points ([`WorkerPool::run_stages`])
/// are built on top of the queue, as is the `MorselScheduler` impl that
/// lets compiled plans run morsel-parallel on the pool.
#[derive(Debug)]
pub struct WorkerPool {
    workers: usize,
    id: usize,
    shared: Arc<PoolShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // `&mut self` proves no `submit` is in flight, so the queue is
        // empty: every queued task belongs to a session some caller is
        // still waiting on.
        self.shared.state.lock().expect("pool queue poisoned").shutdown = true;
        self.shared.work.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl WorkerPool {
    /// Create a pool with `workers` persistent worker threads.
    pub fn new(workers: usize) -> WorkerPool {
        assert!(workers > 0);
        let id = NEXT_POOL_ID.fetch_add(1, Ordering::Relaxed);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolQueue { queue: VecDeque::new(), shutdown: false }),
            work: Condvar::new(),
            counters: PoolCounters {
                queue_depth: Gauge::new(),
                tasks: Counter::new(),
                sessions: Counter::new(),
                panics: Counter::new(),
                busy_ns: (0..workers).map(|_| Counter::new()).collect(),
            },
        });
        let handles = (0..workers)
            .map(|w| {
                let shared = shared.clone();
                std::thread::spawn(move || worker_loop(&shared, id, w))
            })
            .collect();
        WorkerPool { workers, id, shared, handles }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Snapshot the pool's subsystem metrics: current queue depth,
    /// cumulative task/session/panic counts, and per-worker busy time.
    /// Lock-free reads of the live counters — safe to call from any thread
    /// at any time, including while sessions are in flight.
    pub fn metrics(&self) -> PoolMetrics {
        let c = &self.shared.counters;
        PoolMetrics {
            queue_depth: c.queue_depth.get(),
            tasks: c.tasks.get(),
            sessions: c.sessions.get(),
            panics: c.panics.get(),
            busy_ns: c.busy_ns.iter().map(Counter::get).collect(),
        }
    }

    /// Run tasks `0..n` on the shared queue and wait for all of them. Each
    /// task receives `(task index, worker index)`. Tasks from concurrent
    /// `submit` calls interleave on the same workers — this is the single
    /// scheduling primitive every other entry point builds on. A panicking
    /// task is caught on its worker (the worker survives, other sessions
    /// are unaffected) and reported here as an error once the session
    /// drains.
    #[allow(unsafe_code)] // audited RawTask lifetime erasure, see SAFETY below
    pub fn submit(&self, n: usize, run: &(dyn Fn(usize, usize) + Sync)) -> Result<()> {
        if n == 0 {
            return Ok(());
        }
        self.shared.counters.sessions.inc();
        // Nested submission from one of this pool's own workers runs
        // inline: parking a worker to wait on tasks that need a worker is
        // a deadlock when the pool is saturated.
        if let Some((pool, w)) = CURRENT_WORKER.with(std::cell::Cell::get) {
            if pool == self.id {
                let mut panic_msg: Option<String> = None;
                for i in 0..n {
                    // Failpoint site (inline nested dispatch): inside the
                    // `catch_unwind`, so injected failures abort the
                    // session, never the worker.
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        svc_fault::fail_point_panic!(svc_fault::site::POOL_DISPATCH);
                        run(i, w);
                    }));
                    self.shared.counters.tasks.inc();
                    if let Err(payload) = outcome {
                        self.shared.counters.panics.inc();
                        if panic_msg.is_none() {
                            panic_msg = Some(panic_text(payload.as_ref()));
                        }
                    }
                }
                return session_outcome(panic_msg);
            }
        }
        // SAFETY: erase the borrow to queue it on 'static worker threads.
        // The wait loop below does not return until `remaining == 0`, i.e.
        // until every dereference of the pointer has completed.
        let run_static: &'static (dyn Fn(usize, usize) + Sync) =
            unsafe { std::mem::transmute(run) };
        let session = Arc::new(Session {
            run: RawTask(run_static as *const _),
            progress: Mutex::new(Progress { remaining: n, panic_msg: None }),
            done: Condvar::new(),
        });
        {
            let mut st = self.shared.state.lock().expect("pool queue poisoned");
            for index in 0..n {
                st.queue.push_back(QueuedTask { session: session.clone(), index });
            }
        }
        self.shared.counters.queue_depth.add(n as i64);
        self.shared.work.notify_all();
        let mut p = session.progress.lock().expect("session progress poisoned");
        while p.remaining > 0 {
            p = session.done.wait(p).expect("session progress poisoned");
        }
        session_outcome(p.panic_msg.take())
    }

    /// Run `stages` sequentially; within a stage, tasks are pulled from the
    /// shared queue by all workers, and the stage ends when every task
    /// completed (the barrier). Returns the busy-interval trace.
    pub fn run_stages(&self, stages: Vec<Vec<Box<dyn FnOnce() + Send>>>) -> ExecutionTrace {
        let epoch = Instant::now();
        let intervals: Mutex<Vec<BusyInterval>> = Mutex::new(Vec::new());

        for stage in stages {
            let tasks: Vec<StageTask> = stage.into_iter().map(|t| Mutex::new(Some(t))).collect();
            self.submit(tasks.len(), &|i, w| {
                let task = tasks[i].lock().unwrap().take().expect("task taken once");
                let start = epoch.elapsed().as_secs_f64();
                task();
                let end = epoch.elapsed().as_secs_f64();
                intervals.lock().unwrap().push(BusyInterval { worker: w, start, end });
            })
            .expect("stage task panicked");
        }

        ExecutionTrace {
            intervals: intervals.into_inner().expect("interval lock poisoned"),
            wall: epoch.elapsed().as_secs_f64(),
            workers: self.workers,
        }
    }

    /// Evaluate a batch of plans against shared bindings on the pool — the
    /// mini-batch maintenance path: one plan per view (or per delta chunk),
    /// all reading the same bound relations.
    ///
    /// Each plan is run through the standard optimizer exactly once, as
    /// part of its worker task. Results come back in input order; once any
    /// plan errors, workers stop picking up new plans (in-flight
    /// evaluations finish) and the error is returned.
    pub fn evaluate_plans(&self, plans: &[Plan], bindings: &Bindings<'_>) -> Result<Vec<Table>> {
        self.evaluate_plans_with(plans, bindings, None)
    }

    /// [`WorkerPool::evaluate_plans`] with an optional cardinality
    /// estimator: each plan's join regions are then reordered by estimated
    /// cost — the per-partition batch plans of mini-batch maintenance all
    /// share one join shape, so one good order pays off across the whole
    /// batch. Each plan is optimized and **compiled exactly once** before
    /// it runs; both happen *inside* the worker tasks (the rule engine,
    /// estimator, and bindings are all read-only), so the compile cost
    /// parallelizes with the evaluation instead of serializing on the
    /// driver. Callers that reuse plans across calls should compile
    /// themselves and use [`WorkerPool::run_compiled`].
    pub fn evaluate_plans_with(
        &self,
        plans: &[Plan],
        bindings: &Bindings<'_>,
        est: Option<&dyn CardEstimator>,
    ) -> Result<Vec<Table>> {
        self.run_batch(plans.len(), |i| {
            let (optimized, _) = match est {
                Some(e) => optimize_with(&plans[i], bindings, e)?,
                None => optimize(&plans[i], bindings)?,
            };
            compile(&optimized, bindings)?.run(bindings)
        })
    }

    /// [`WorkerPool::evaluate_plans`] without the optimizer pass: every plan
    /// is compiled and run exactly as written. The optimizer-off arm of the
    /// mini-batch benchmarks.
    pub fn evaluate_plans_raw(
        &self,
        plans: &[Plan],
        bindings: &Bindings<'_>,
    ) -> Result<Vec<Table>> {
        self.run_batch(plans.len(), |i| compile(&plans[i], bindings)?.run(bindings))
    }

    /// Evaluate pre-compiled physical plans against shared bindings — the
    /// zero-recompilation fan-out used by `BatchPipeline`'s per-epoch plan
    /// cache: every batch after the first skips optimization, schema
    /// derivation, and predicate binding entirely.
    pub fn run_compiled(
        &self,
        plans: &[PhysicalPlan],
        bindings: &Bindings<'_>,
    ) -> Result<Vec<Table>> {
        self.run_batch(plans.len(), |i| plans[i].run(bindings))
    }

    /// Run `n` numbered tasks off the shared queue and collect their
    /// results in index order. Once any task errors, later tasks of this
    /// batch are skipped as they come up (in-flight evaluations finish) and
    /// the first error in index order is returned — tasks that did run
    /// never masquerade as "not evaluated". A panicking task fails only
    /// this batch; concurrent batches on the same pool are unaffected.
    pub fn run_batch<T, F>(&self, n: usize, eval: F) -> Result<Vec<T>>
    where
        T: Send,
        F: Fn(usize) -> Result<T> + Sync,
    {
        let slots: Vec<Mutex<Option<Result<T>>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let failed = AtomicBool::new(false);
        self.submit(n, &|i, _w| {
            if failed.load(Ordering::Relaxed) {
                return;
            }
            let out = eval(i);
            if out.is_err() {
                failed.store(true, Ordering::Relaxed);
            }
            *slots[i].lock().unwrap() = Some(out);
        })?;
        if failed.load(Ordering::Relaxed) {
            for slot in &slots {
                if let Some(Err(e)) = &*slot.lock().unwrap() {
                    return Err(e.clone());
                }
            }
        }
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result lock poisoned")
                    .unwrap_or_else(|| Err(StorageError::Invalid("plan was not evaluated".into())))
            })
            .collect()
    }
}

/// Morsel tasks from `PhysicalPlan::run_parallel` land on the same shared
/// queue as whole-plan tasks, so intra-plan morsels and inter-plan batches
/// from concurrent callers interleave across one set of workers.
impl MorselScheduler for WorkerPool {
    fn run_tasks(&self, n: usize, task: &(dyn Fn(usize) + Sync)) -> Result<()> {
        self.submit(n, &|i, _w| task(i))
    }
}

/// Map a session's panic record to the submit result, carrying the first
/// panic's payload text so callers (and chaos harnesses) can tell injected
/// failures from real ones.
fn session_outcome(panic_msg: Option<String>) -> Result<()> {
    match panic_msg {
        Some(msg) => Err(StorageError::Invalid(format!(
            "a worker task panicked: {msg}; its session was aborted (other sessions on the pool \
             are unaffected)"
        ))),
        None => Ok(()),
    }
}

/// The persistent worker body: pull one task at a time off the shared
/// queue, run it under `catch_unwind`, report completion to its session.
#[allow(unsafe_code)] // audited RawTask dereference, see SAFETY below
fn worker_loop(shared: &PoolShared, pool_id: usize, w: usize) {
    CURRENT_WORKER.with(|c| c.set(Some((pool_id, w))));
    loop {
        let task = {
            let mut st = shared.state.lock().expect("pool queue poisoned");
            loop {
                if let Some(t) = st.queue.pop_front() {
                    break t;
                }
                if st.shutdown {
                    return;
                }
                st = shared.work.wait(st).expect("pool queue poisoned");
            }
        };
        shared.counters.queue_depth.dec();
        // SAFETY: the submitting thread is parked in `submit` until this
        // session's `remaining` hits zero, which happens only after this
        // call returns — the closure is alive for the whole call.
        let run = unsafe { &*task.session.run.0 };
        let t0 = Instant::now();
        // Failpoint site: inside the `catch_unwind`, so an injected failure
        // is indistinguishable from a task panic — the session gets the
        // error, the worker thread survives.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            svc_fault::fail_point_panic!(svc_fault::site::POOL_DISPATCH);
            run(task.index, w);
        }));
        shared.counters.busy_ns[w].add(t0.elapsed().as_nanos() as u64);
        shared.counters.tasks.inc();
        let panic_msg = outcome.err().map(|payload| {
            shared.counters.panics.inc();
            panic_text(payload.as_ref())
        });
        task.session.complete(panic_msg);
    }
}

/// Deterministic CPU-bound busy work: `units` rounds of integer mixing.
/// Used by the benchmarks to model per-record processing cost.
pub fn spin(units: u64) -> u64 {
    let mut x = 0x9e3779b97f4a7c15u64 ^ units;
    for i in 0..units * 400 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
        x ^= x >> 29;
    }
    std::hint::black_box(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use svc_relalg::aggregate::AggSpec;
    use svc_relalg::eval::evaluate;
    use svc_relalg::scalar::{col, lit};
    use svc_storage::{DataType, Database, Schema, Value};

    #[test]
    fn evaluate_plans_matches_serial_evaluation() {
        let mut db = Database::new();
        let mut events = Table::new(
            Schema::from_pairs(&[
                ("id", DataType::Int),
                ("grp", DataType::Int),
                ("x", DataType::Float),
            ])
            .unwrap(),
            &["id"],
        )
        .unwrap();
        for i in 0..2000i64 {
            events
                .insert(vec![Value::Int(i), Value::Int(i % 50), Value::Float((i % 17) as f64)])
                .unwrap();
        }
        db.create_table("events", events);
        let bindings = Bindings::from_database(&db);

        let plans: Vec<Plan> = (0..6)
            .map(|k| {
                Plan::scan("events")
                    .aggregate(
                        &["grp"],
                        vec![
                            AggSpec::count_all("n"),
                            AggSpec::new("sx", svc_relalg::aggregate::AggFunc::Sum, col("x")),
                        ],
                    )
                    .select(col("grp").ge(lit(k * 5)))
            })
            .collect();

        let pool = WorkerPool::new(3);
        let parallel = pool.evaluate_plans(&plans, &bindings).unwrap();
        for (plan, got) in plans.iter().zip(&parallel) {
            let (optimized, _) = optimize(plan, &db).unwrap();
            let expected = evaluate(&optimized, &bindings).unwrap();
            assert!(got.same_contents(&expected), "parallel batch diverged");
        }
    }

    #[test]
    fn evaluate_plans_surfaces_errors() {
        let db = Database::new();
        let bindings = Bindings::from_database(&db);
        let pool = WorkerPool::new(2);
        let err = pool.evaluate_plans(&[Plan::scan("missing")], &bindings);
        assert!(err.is_err());
    }

    #[test]
    fn failing_plan_mid_batch_surfaces_its_own_error() {
        // A batch where plan 3 is the only broken one: the returned error
        // must be *that* plan's error — never the internal "plan was not
        // evaluated" placeholder for plans that did run (or never ran).
        let mut db = Database::new();
        let mut t = Table::new(
            Schema::from_pairs(&[("id", DataType::Int), ("x", DataType::Float)]).unwrap(),
            &["id"],
        )
        .unwrap();
        for i in 0..100i64 {
            t.insert(vec![Value::Int(i), Value::Float(i as f64)]).unwrap();
        }
        db.create_table("t", t);
        let bindings = Bindings::from_database(&db);

        let mut plans: Vec<Plan> = (0..8).map(|_| Plan::scan("t")).collect();
        plans[3] = Plan::scan("no_such_table");
        let pool = WorkerPool::new(2);
        let err = pool.evaluate_plans(&plans, &bindings).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("no_such_table"), "expected the original error, got: {msg}");
        assert!(!msg.contains("plan was not evaluated"), "placeholder leaked: {msg}");
    }

    #[test]
    fn failure_stops_new_pickups_and_keeps_the_original_error() {
        // Deterministic with one worker: tasks run strictly in order, so
        // after index 2 fails, indices 3.. must never be picked up.
        let pool = WorkerPool::new(1);
        let ran = std::sync::Arc::new(AtomicUsize::new(0));
        let ran2 = ran.clone();
        let err = pool
            .run_batch(10, move |i| {
                ran2.fetch_add(1, Ordering::Relaxed);
                if i == 2 {
                    Err(StorageError::Invalid(format!("task {i} exploded")))
                } else {
                    Ok(i)
                }
            })
            .unwrap_err();
        assert_eq!(ran.load(Ordering::Relaxed), 3, "no new pickups after the failure");
        assert!(err.to_string().contains("task 2 exploded"), "wrong error: {err}");
    }

    #[test]
    fn panicking_task_fails_only_its_session() {
        // Two sessions share one pool from different threads: the session
        // with a panicking task gets an error; the other completes with
        // correct results; the pool keeps working afterwards. This is the
        // isolation contract morsel-parallel plans rely on.
        let pool = std::sync::Arc::new(WorkerPool::new(2));
        let (pa, pb) = (pool.clone(), pool.clone());
        std::thread::scope(|s| {
            let ha = s.spawn(move || {
                pa.submit(8, &|i, _w| {
                    if i == 3 {
                        panic!("morsel exploded");
                    }
                })
            });
            let hb = s.spawn(move || pb.run_batch(64, |i| Ok(i * 2)));
            let ra = ha.join().expect("submitting thread must not unwind");
            let rb = hb.join().expect("concurrent batch must not unwind").unwrap();
            assert!(ra.is_err(), "the panicking session must surface an error");
            assert!(ra.unwrap_err().to_string().contains("panicked"));
            assert_eq!(rb, (0..64).map(|i| i * 2).collect::<Vec<_>>());
        });
        // No worker died: the pool still drains new sessions.
        let after = pool.run_batch(16, |i| Ok(i + 1)).unwrap();
        assert_eq!(after, (0..16).map(|i| i + 1).collect::<Vec<_>>());
    }

    /// A *storm* of panics — many sessions, several panicking tasks each,
    /// interleaved with healthy sessions from another thread — must leave
    /// the pool fully usable, report every sick session as an error, and
    /// keep the panic gauge exact. Extends the single-panic isolation test
    /// above to sustained failure load.
    #[test]
    fn panic_storms_leave_the_pool_usable_and_the_gauge_exact() {
        let pool = std::sync::Arc::new(WorkerPool::new(2));
        let before = pool.metrics();
        let rounds = 12usize;
        let mut expected_panics = 0u64;
        std::thread::scope(|s| {
            // Healthy traffic competing with the storm on the same queue.
            let healthy_pool = pool.clone();
            let healthy = s.spawn(move || {
                for _ in 0..rounds {
                    let out = healthy_pool.run_batch(16, |i| Ok(i * 3)).unwrap();
                    assert_eq!(out, (0..16).map(|i| i * 3).collect::<Vec<_>>());
                }
            });
            for round in 0..rounds {
                // 1..=3 panicking tasks out of 8, at shifting indices.
                let bad = round % 3 + 1;
                let res = pool.submit(8, &|i, _w| {
                    if (i + round) % 8 < bad {
                        panic!("storm round {round} task {i}");
                    }
                });
                assert!(res.is_err(), "round {round}: a panicking session must error");
                expected_panics += bad as u64;
            }
            healthy.join().expect("healthy traffic must be unaffected by the storm");
        });
        let m = pool.metrics();
        assert_eq!(m.panics - before.panics, expected_panics, "panic gauge drifted");
        assert_eq!(
            m.sessions - before.sessions,
            2 * rounds as u64,
            "every storm and healthy session accounted"
        );
        assert_eq!(m.queue_depth, 0, "queue drained");
        // The pool is still fully usable afterwards.
        let out = pool.run_batch(32, |i| Ok(i + 7)).unwrap();
        assert_eq!(out, (0..32).map(|i| i + 7).collect::<Vec<_>>());
    }

    #[test]
    fn nested_submission_from_a_worker_runs_inline() {
        // A pool task that submits to its own pool must not deadlock, even
        // with a single worker: nested sessions run inline on that worker
        // instead of queueing behind themselves.
        let pool = WorkerPool::new(1);
        let total = AtomicUsize::new(0);
        let (pool_ref, total_ref) = (&pool, &total);
        pool.submit(2, &|_, _| {
            pool_ref
                .submit(3, &|_, _| {
                    total_ref.fetch_add(1, Ordering::Relaxed);
                })
                .unwrap();
        })
        .unwrap();
        assert_eq!(total.load(Ordering::Relaxed), 6, "2 outer × 3 inner tasks all ran");
    }

    #[test]
    fn run_batch_success_returns_results_in_order() {
        let pool = WorkerPool::new(4);
        let out = pool.run_batch(32, |i| Ok(i * i)).unwrap();
        assert_eq!(out, (0..32).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn all_tasks_run_once() {
        let pool = WorkerPool::new(4);
        let counter = std::sync::Arc::new(AtomicUsize::new(0));
        let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..64)
            .map(|_| {
                let c = counter.clone();
                Box::new(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                    spin(5);
                }) as Box<dyn FnOnce() + Send>
            })
            .collect();
        let trace = pool.run_stages(vec![tasks]);
        assert_eq!(counter.load(Ordering::Relaxed), 64);
        assert_eq!(trace.intervals.len(), 64);
        assert!(trace.wall > 0.0);
    }

    #[test]
    fn skewed_stages_leave_idle_time() {
        // One straggler task per stage → utilization well below 1.
        let pool = WorkerPool::new(4);
        let mut stages = Vec::new();
        for _ in 0..3 {
            let mut tasks: Vec<Box<dyn FnOnce() + Send>> = vec![Box::new(|| {
                spin(2000);
            })];
            for _ in 0..3 {
                tasks.push(Box::new(|| {
                    spin(50);
                }));
            }
            stages.push(tasks);
        }
        let trace = pool.run_stages(stages);
        let u = trace.overall_utilization();
        assert!(u < 0.8, "expected idle time at barriers, utilization {u}");
    }

    #[test]
    fn balanced_stage_is_well_utilized() {
        // Tasks must be large enough that per-task bookkeeping is noise.
        let pool = WorkerPool::new(4);
        let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..16)
            .map(|_| {
                Box::new(|| {
                    spin(20_000);
                }) as Box<dyn FnOnce() + Send>
            })
            .collect();
        let trace = pool.run_stages(vec![tasks]);
        let u = trace.overall_utilization();
        assert!(u > 0.5, "balanced work should keep workers busy, got {u}");
    }

    #[test]
    fn utilization_buckets_sum_to_overall() {
        let pool = WorkerPool::new(2);
        let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..8)
            .map(|_| {
                Box::new(|| {
                    spin(200);
                }) as Box<dyn FnOnce() + Send>
            })
            .collect();
        let trace = pool.run_stages(vec![tasks]);
        let buckets = trace.utilization(10);
        let mean = buckets.iter().sum::<f64>() / buckets.len() as f64;
        assert!((mean - trace.overall_utilization()).abs() < 0.05);
        assert!(buckets.iter().all(|&b| (0.0..=1.01).contains(&b)));
    }
}
