//! A worker pool with stage barriers and per-worker busy-time accounting —
//! the synchronous-parallelism model whose idle gaps Figure 16 visualizes —
//! plus the mini-batch plan-evaluation entry point
//! ([`WorkerPool::evaluate_plans`]) that routes every plan through the
//! `svc-relalg` optimizer exactly once before scheduling it.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use svc_relalg::eval::Bindings;
use svc_relalg::exec::{compile, PhysicalPlan};
use svc_relalg::optimizer::{optimize, optimize_with, CardEstimator};
use svc_relalg::plan::Plan;
use svc_storage::{Result, StorageError, Table};

/// One recorded busy interval of one worker, in seconds since the trace
/// epoch.
#[derive(Debug, Clone, Copy)]
pub struct BusyInterval {
    /// Worker index.
    pub worker: usize,
    /// Interval start (s).
    pub start: f64,
    /// Interval end (s).
    pub end: f64,
}

/// The execution record of one or more stages on the pool.
#[derive(Debug, Clone, Default)]
pub struct ExecutionTrace {
    /// All busy intervals.
    pub intervals: Vec<BusyInterval>,
    /// Total wall-clock duration (s).
    pub wall: f64,
    /// Number of workers.
    pub workers: usize,
}

impl ExecutionTrace {
    /// Average CPU utilization in `buckets` equal time slices: the fraction
    /// of worker-time spent busy per slice (the Figure 16 series).
    pub fn utilization(&self, buckets: usize) -> Vec<f64> {
        assert!(buckets > 0);
        let mut out = vec![0.0; buckets];
        if self.wall <= 0.0 || self.workers == 0 {
            return out;
        }
        let width = self.wall / buckets as f64;
        for iv in &self.intervals {
            // Distribute the interval over the buckets it spans.
            let first = ((iv.start / width) as usize).min(buckets - 1);
            let last = ((iv.end / width) as usize).min(buckets - 1);
            for (b, slot) in out.iter_mut().enumerate().take(last + 1).skip(first) {
                let lo = (b as f64 * width).max(iv.start);
                let hi = ((b + 1) as f64 * width).min(iv.end);
                if hi > lo {
                    *slot += hi - lo;
                }
            }
        }
        let capacity = width * self.workers as f64;
        for v in out.iter_mut() {
            *v /= capacity;
        }
        out
    }

    /// Overall busy fraction.
    pub fn overall_utilization(&self) -> f64 {
        if self.wall <= 0.0 || self.workers == 0 {
            return 0.0;
        }
        let busy: f64 = self.intervals.iter().map(|iv| iv.end - iv.start).sum();
        busy / (self.wall * self.workers as f64)
    }
}

/// A fixed-size worker pool executing stages of closures with a barrier
/// after each stage (the synchronous shuffle model of the paper's Spark
/// setup).
#[derive(Debug)]
pub struct WorkerPool {
    workers: usize,
}

/// A stage task: claimed exactly once off the shared queue.
type StageTask = Mutex<Option<Box<dyn FnOnce() + Send>>>;

impl WorkerPool {
    /// Create a pool with `workers` threads per stage.
    pub fn new(workers: usize) -> WorkerPool {
        assert!(workers > 0);
        WorkerPool { workers }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Run `stages` sequentially; within a stage, tasks are pulled from a
    /// shared queue by all workers, and the stage ends when every task
    /// completed (the barrier). Returns the busy-interval trace.
    pub fn run_stages(&self, stages: Vec<Vec<Box<dyn FnOnce() + Send>>>) -> ExecutionTrace {
        let epoch = Instant::now();
        let intervals: Mutex<Vec<BusyInterval>> = Mutex::new(Vec::new());

        for stage in stages {
            let tasks: Vec<StageTask> = stage.into_iter().map(|t| Mutex::new(Some(t))).collect();
            let next = AtomicUsize::new(0);
            std::thread::scope(|s| {
                for w in 0..self.workers {
                    let tasks = &tasks;
                    let next = &next;
                    let intervals = &intervals;
                    s.spawn(move || loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= tasks.len() {
                            break;
                        }
                        let task = tasks[i].lock().unwrap().take().expect("task taken once");
                        let start = epoch.elapsed().as_secs_f64();
                        task();
                        let end = epoch.elapsed().as_secs_f64();
                        intervals.lock().unwrap().push(BusyInterval { worker: w, start, end });
                    });
                }
            });
        }

        ExecutionTrace {
            intervals: intervals.into_inner().expect("interval lock poisoned"),
            wall: epoch.elapsed().as_secs_f64(),
            workers: self.workers,
        }
    }

    /// Evaluate a batch of plans against shared bindings on the pool — the
    /// mini-batch maintenance path: one plan per view (or per delta chunk),
    /// all reading the same bound relations.
    ///
    /// Each plan is run through the standard optimizer exactly once, as
    /// part of its worker task. Results come back in input order; once any
    /// plan errors, workers stop picking up new plans (in-flight
    /// evaluations finish) and the error is returned.
    pub fn evaluate_plans(&self, plans: &[Plan], bindings: &Bindings<'_>) -> Result<Vec<Table>> {
        self.evaluate_plans_with(plans, bindings, None)
    }

    /// [`WorkerPool::evaluate_plans`] with an optional cardinality
    /// estimator: each plan's join regions are then reordered by estimated
    /// cost — the per-partition batch plans of mini-batch maintenance all
    /// share one join shape, so one good order pays off across the whole
    /// batch. Each plan is optimized and **compiled exactly once** before
    /// it runs; both happen *inside* the worker tasks (the rule engine,
    /// estimator, and bindings are all read-only), so the compile cost
    /// parallelizes with the evaluation instead of serializing on the
    /// driver. Callers that reuse plans across calls should compile
    /// themselves and use [`WorkerPool::run_compiled`].
    pub fn evaluate_plans_with(
        &self,
        plans: &[Plan],
        bindings: &Bindings<'_>,
        est: Option<&dyn CardEstimator>,
    ) -> Result<Vec<Table>> {
        self.run_batch(plans.len(), |i| {
            let (optimized, _) = match est {
                Some(e) => optimize_with(&plans[i], bindings, e)?,
                None => optimize(&plans[i], bindings)?,
            };
            compile(&optimized, bindings)?.run(bindings)
        })
    }

    /// [`WorkerPool::evaluate_plans`] without the optimizer pass: every plan
    /// is compiled and run exactly as written. The optimizer-off arm of the
    /// mini-batch benchmarks.
    pub fn evaluate_plans_raw(
        &self,
        plans: &[Plan],
        bindings: &Bindings<'_>,
    ) -> Result<Vec<Table>> {
        self.run_batch(plans.len(), |i| compile(&plans[i], bindings)?.run(bindings))
    }

    /// Evaluate pre-compiled physical plans against shared bindings — the
    /// zero-recompilation fan-out used by `BatchPipeline`'s per-epoch plan
    /// cache: every batch after the first skips optimization, schema
    /// derivation, and predicate binding entirely.
    pub fn run_compiled(
        &self,
        plans: &[PhysicalPlan],
        bindings: &Bindings<'_>,
    ) -> Result<Vec<Table>> {
        self.run_batch(plans.len(), |i| plans[i].run(bindings))
    }

    /// Run `n` numbered tasks off a shared queue on the pool and collect
    /// their results in index order. Once any task errors, workers stop
    /// picking up new tasks (in-flight evaluations finish) and the first
    /// error in index order is returned — tasks that did run never
    /// masquerade as "not evaluated".
    pub fn run_batch<T, F>(&self, n: usize, eval: F) -> Result<Vec<T>>
    where
        T: Send,
        F: Fn(usize) -> Result<T> + Sync,
    {
        let slots: Vec<Mutex<Option<Result<T>>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let failed = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            for _ in 0..self.workers.min(n).max(1) {
                let slots = &slots;
                let next = &next;
                let failed = &failed;
                let eval = &eval;
                s.spawn(move || loop {
                    if failed.load(Ordering::Relaxed) {
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= slots.len() {
                        break;
                    }
                    let out = eval(i);
                    if out.is_err() {
                        failed.store(true, Ordering::Relaxed);
                    }
                    *slots[i].lock().unwrap() = Some(out);
                });
            }
        });
        if failed.load(Ordering::Relaxed) {
            for slot in &slots {
                if let Some(Err(e)) = &*slot.lock().unwrap() {
                    return Err(e.clone());
                }
            }
        }
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result lock poisoned")
                    .unwrap_or_else(|| Err(StorageError::Invalid("plan was not evaluated".into())))
            })
            .collect()
    }
}

/// Deterministic CPU-bound busy work: `units` rounds of integer mixing.
/// Used by the benchmarks to model per-record processing cost.
pub fn spin(units: u64) -> u64 {
    let mut x = 0x9e3779b97f4a7c15u64 ^ units;
    for i in 0..units * 400 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
        x ^= x >> 29;
    }
    std::hint::black_box(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use svc_relalg::aggregate::AggSpec;
    use svc_relalg::eval::evaluate;
    use svc_relalg::scalar::{col, lit};
    use svc_storage::{DataType, Database, Schema, Value};

    #[test]
    fn evaluate_plans_matches_serial_evaluation() {
        let mut db = Database::new();
        let mut events = Table::new(
            Schema::from_pairs(&[
                ("id", DataType::Int),
                ("grp", DataType::Int),
                ("x", DataType::Float),
            ])
            .unwrap(),
            &["id"],
        )
        .unwrap();
        for i in 0..2000i64 {
            events
                .insert(vec![Value::Int(i), Value::Int(i % 50), Value::Float((i % 17) as f64)])
                .unwrap();
        }
        db.create_table("events", events);
        let bindings = Bindings::from_database(&db);

        let plans: Vec<Plan> = (0..6)
            .map(|k| {
                Plan::scan("events")
                    .aggregate(
                        &["grp"],
                        vec![
                            AggSpec::count_all("n"),
                            AggSpec::new("sx", svc_relalg::aggregate::AggFunc::Sum, col("x")),
                        ],
                    )
                    .select(col("grp").ge(lit(k * 5)))
            })
            .collect();

        let pool = WorkerPool::new(3);
        let parallel = pool.evaluate_plans(&plans, &bindings).unwrap();
        for (plan, got) in plans.iter().zip(&parallel) {
            let (optimized, _) = optimize(plan, &db).unwrap();
            let expected = evaluate(&optimized, &bindings).unwrap();
            assert!(got.same_contents(&expected), "parallel batch diverged");
        }
    }

    #[test]
    fn evaluate_plans_surfaces_errors() {
        let db = Database::new();
        let bindings = Bindings::from_database(&db);
        let pool = WorkerPool::new(2);
        let err = pool.evaluate_plans(&[Plan::scan("missing")], &bindings);
        assert!(err.is_err());
    }

    #[test]
    fn failing_plan_mid_batch_surfaces_its_own_error() {
        // A batch where plan 3 is the only broken one: the returned error
        // must be *that* plan's error — never the internal "plan was not
        // evaluated" placeholder for plans that did run (or never ran).
        let mut db = Database::new();
        let mut t = Table::new(
            Schema::from_pairs(&[("id", DataType::Int), ("x", DataType::Float)]).unwrap(),
            &["id"],
        )
        .unwrap();
        for i in 0..100i64 {
            t.insert(vec![Value::Int(i), Value::Float(i as f64)]).unwrap();
        }
        db.create_table("t", t);
        let bindings = Bindings::from_database(&db);

        let mut plans: Vec<Plan> = (0..8).map(|_| Plan::scan("t")).collect();
        plans[3] = Plan::scan("no_such_table");
        let pool = WorkerPool::new(2);
        let err = pool.evaluate_plans(&plans, &bindings).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("no_such_table"), "expected the original error, got: {msg}");
        assert!(!msg.contains("plan was not evaluated"), "placeholder leaked: {msg}");
    }

    #[test]
    fn failure_stops_new_pickups_and_keeps_the_original_error() {
        // Deterministic with one worker: tasks run strictly in order, so
        // after index 2 fails, indices 3.. must never be picked up.
        let pool = WorkerPool::new(1);
        let ran = std::sync::Arc::new(AtomicUsize::new(0));
        let ran2 = ran.clone();
        let err = pool
            .run_batch(10, move |i| {
                ran2.fetch_add(1, Ordering::Relaxed);
                if i == 2 {
                    Err(StorageError::Invalid(format!("task {i} exploded")))
                } else {
                    Ok(i)
                }
            })
            .unwrap_err();
        assert_eq!(ran.load(Ordering::Relaxed), 3, "no new pickups after the failure");
        assert!(err.to_string().contains("task 2 exploded"), "wrong error: {err}");
    }

    #[test]
    fn run_batch_success_returns_results_in_order() {
        let pool = WorkerPool::new(4);
        let out = pool.run_batch(32, |i| Ok(i * i)).unwrap();
        assert_eq!(out, (0..32).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn all_tasks_run_once() {
        let pool = WorkerPool::new(4);
        let counter = std::sync::Arc::new(AtomicUsize::new(0));
        let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..64)
            .map(|_| {
                let c = counter.clone();
                Box::new(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                    spin(5);
                }) as Box<dyn FnOnce() + Send>
            })
            .collect();
        let trace = pool.run_stages(vec![tasks]);
        assert_eq!(counter.load(Ordering::Relaxed), 64);
        assert_eq!(trace.intervals.len(), 64);
        assert!(trace.wall > 0.0);
    }

    #[test]
    fn skewed_stages_leave_idle_time() {
        // One straggler task per stage → utilization well below 1.
        let pool = WorkerPool::new(4);
        let mut stages = Vec::new();
        for _ in 0..3 {
            let mut tasks: Vec<Box<dyn FnOnce() + Send>> = vec![Box::new(|| {
                spin(2000);
            })];
            for _ in 0..3 {
                tasks.push(Box::new(|| {
                    spin(50);
                }));
            }
            stages.push(tasks);
        }
        let trace = pool.run_stages(stages);
        let u = trace.overall_utilization();
        assert!(u < 0.8, "expected idle time at barriers, utilization {u}");
    }

    #[test]
    fn balanced_stage_is_well_utilized() {
        // Tasks must be large enough that per-task bookkeeping is noise.
        let pool = WorkerPool::new(4);
        let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..16)
            .map(|_| {
                Box::new(|| {
                    spin(20_000);
                }) as Box<dyn FnOnce() + Send>
            })
            .collect();
        let trace = pool.run_stages(vec![tasks]);
        let u = trace.overall_utilization();
        assert!(u > 0.5, "balanced work should keep workers busy, got {u}");
    }

    #[test]
    fn utilization_buckets_sum_to_overall() {
        let pool = WorkerPool::new(2);
        let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..8)
            .map(|_| {
                Box::new(|| {
                    spin(200);
                }) as Box<dyn FnOnce() + Send>
            })
            .collect();
        let trace = pool.run_stages(vec![tasks]);
        let buckets = trace.utilization(10);
        let mean = buckets.iter().sum::<f64>() / buckets.len() as f64;
        assert!((mean - trace.overall_utilization()).abs() < 0.05);
        assert!(buckets.iter().all(|&b| (0.0..=1.01).contains(&b)));
    }
}
