#![forbid(unsafe_code)]

//! Offline shim for the subset of the `proptest` API used by this
//! workspace: the [`proptest!`] macro with `#![proptest_config(..)]`,
//! range and tuple strategies, `proptest::collection::vec`, and
//! [`prop_assert!`].
//!
//! The build environment has no crates.io access. This shim keeps the same
//! surface syntax so the test files compile unchanged against the real
//! crate. Semantics are simplified: cases are generated from a fixed
//! deterministic seed (overridable via `PROPTEST_SEED`) and there is no
//! shrinking — a failing case panics with the generated inputs interpolated
//! into the assertion message.

/// Strategy: how to generate a value of some type from the runner's RNG.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A value generator (simplified: no shrinking, no rejection).
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_strategy {
        ($t:ty) => {
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty strategy range");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        };
    }

    int_strategy!(u8);
    int_strategy!(u16);
    int_strategy!(u32);
    int_strategy!(u64);
    int_strategy!(i8);
    int_strategy!(i16);
    int_strategy!(i32);
    int_strategy!(i64);
    int_strategy!(usize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($($s:ident/$idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A / 0, B / 1);
    tuple_strategy!(A / 0, B / 1, C / 2);
    tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for a `Vec` with element strategy `S` and a length range.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Configuration and the (deterministic) case runner.
pub mod test_runner {
    /// Per-test configuration (subset of the real `ProptestConfig`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// Configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    /// Deterministic SplitMix64 RNG driving generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeded from `PROPTEST_SEED` when set, else a fixed default, so CI
        /// runs are reproducible.
        pub fn from_env() -> TestRng {
            let seed = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(0x5eed_cafe_f00d_u64);
            TestRng { state: seed }
        }

        /// Next raw 64-bit output.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// The `proptest!` macro: wraps `#[test]` functions whose arguments are
/// drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)
     $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::from_env();
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        $body
                    }));
                    if let Err(panic) = result {
                        let inputs = [$(format!(
                            "{} = {:?}", stringify!($arg), $arg
                        )),+].join(", ");
                        eprintln!(
                            "proptest case {case}/{} failed with inputs: {inputs}",
                            config.cases
                        );
                        std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

/// `prop_assert!`: panics (no shrinking) with the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// `prop_assert_eq!`: panics with the formatted message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(, $($fmt:tt)*)?) => {
        assert_eq!($a, $b $(, $($fmt)*)?);
    };
}

/// Re-exports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_vecs_generate_in_bounds(
            x in 3u64..10,
            v in collection::vec((0u8..3, 0i64..100), 1..6),
        ) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 6);
            for (a, b) in &v {
                prop_assert!(*a < 3, "a = {a}");
                prop_assert!((0..100).contains(b));
            }
        }
    }
}
