#![forbid(unsafe_code)]

//! Offline shim for the subset of the `criterion` API used by
//! `crates/bench/benches/micro.rs`: [`Criterion::bench_function`], the
//! builder knobs, and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! The build environment has no crates.io access. Timing here is a plain
//! mean-of-N wall-clock measurement printed to stdout — good enough to
//! compare before/after on the same machine, with none of criterion's
//! statistics. The bench files compile unchanged against the real crate.

use std::time::{Duration, Instant};

/// Re-export so `use criterion::black_box` keeps working.
pub use std::hint::black_box;

/// The benchmark driver (subset of the real `Criterion`).
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Number of measured samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Target measurement duration (acts as a cap here).
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up duration before measuring.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Run `f` under a [`Bencher`] and report mean / min / max per iteration.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        // Warm-up: run the closure until the warm-up budget elapses.
        let warm_start = Instant::now();
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
        while warm_start.elapsed() < self.warm_up_time {
            b.elapsed = Duration::ZERO;
            f(&mut b);
        }

        let mut samples = Vec::with_capacity(self.sample_size);
        let budget = Instant::now();
        for _ in 0..self.sample_size {
            let mut bench = Bencher { iters: 1, elapsed: Duration::ZERO };
            f(&mut bench);
            samples.push(bench.elapsed.as_secs_f64() / bench.iters as f64);
            if budget.elapsed() > self.measurement_time {
                break;
            }
        }
        let n = samples.len().max(1) as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(0.0f64, f64::max);
        println!("{id:<40} mean {:>12} min {:>12} max {:>12}", fmt_s(mean), fmt_s(min), fmt_s(max));
        self
    }
}

fn fmt_s(s: f64) -> String {
    if s < 1e-6 {
        format!("{:.1} ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:.2} µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{s:.3} s")
    }
}

/// Passed to the closure of [`Criterion::bench_function`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, recording total elapsed time over the iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.iters = 1;
        let start = Instant::now();
        black_box(routine());
        self.elapsed = start.elapsed();
    }
}

/// Mirrors `criterion_group!` (config + targets form and plain form).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Mirrors `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(1))
    }

    #[test]
    fn bench_function_runs_closure() {
        let mut ran = 0u64;
        quick().bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
            });
        });
        assert!(ran > 0);
    }
}
