#![forbid(unsafe_code)]

//! Offline shim for the subset of the `rand` 0.9 API used by this
//! workspace: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::random`] and [`Rng::random_range`].
//!
//! The build environment has no crates.io access, so this crate stands in
//! for the real `rand`. The generator is SplitMix64 — deterministic per
//! seed, statistically solid for workload generation and bootstrap
//! resampling, and *not* intended for cryptography. The API is drop-in for
//! the call sites in this repository; swapping back to the real crate is a
//! one-line change in the workspace manifest.

/// A source of pseudo-random `u64`s.
pub trait RngCore {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::random`].
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 random mantissa bits in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        unit_f64(rng)
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Draw uniformly from `[0, bound)` without modulo bias (Lemire-style
/// rejection on the widening multiply).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "empty range passed to random_range");
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        let low = m as u64;
        if low >= bound || low >= (u64::MAX - bound + 1) % bound {
            return (m >> 64) as u64;
        }
    }
}

/// Element types drawable uniformly from a range. Keeping the element type
/// as the trait parameter (rather than the range type) is what lets
/// `rng.random_range(1..120)` infer its output type from context, exactly
/// like the real `rand`.
pub trait SampleUniform: Sized {
    /// Uniform draw from the half-open range `[start, end)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
    /// Uniform draw from the closed range `[start, end]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
}

macro_rules! uniform_int {
    ($t:ty) => {
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                assert!(start < end, "empty range passed to random_range");
                let span = (end as i128 - start as i128) as u64;
                (start as i128 + uniform_below(rng, span) as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                assert!(start <= end, "empty range passed to random_range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i128 + uniform_below(rng, span + 1) as i128) as $t
            }
        }
    };
}

uniform_int!(u8);
uniform_int!(u16);
uniform_int!(u32);
uniform_int!(u64);
uniform_int!(i8);
uniform_int!(i16);
uniform_int!(i32);
uniform_int!(i64);
uniform_int!(usize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, start: f64, end: f64) -> f64 {
        assert!(start < end, "empty range passed to random_range");
        start + unit_f64(rng) * (end - start)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: f64, end: f64) -> f64 {
        assert!(start <= end, "empty range passed to random_range");
        start + unit_f64(rng) * (end - start)
    }
}

/// Ranges acceptable to [`Rng::random_range`], parameterized by element type.
pub trait SampleRange<T> {
    /// Draw one value inside the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// The user-facing generator trait (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draw a value of an inferred type ([`f64`], [`u64`], [`bool`]).
    fn random<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draw uniformly from a range.
    fn random_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator (stands in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.random_range(3..40i64);
            assert!((3..40).contains(&x));
            let y = rng.random_range(0.1..0.6);
            assert!((0.1..0.6).contains(&y));
            let z = rng.random_range(1..=5usize);
            assert!((1..=5).contains(&z));
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn output_type_inferred_from_context() {
        let mut rng = StdRng::seed_from_u64(2);
        let base: i64 = 100;
        let x = base + rng.random_range(1..120);
        assert!((101..220).contains(&x));
    }

    #[test]
    fn uniformity_rough() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 100_000;
        let mut counts = [0usize; 10];
        for _ in 0..n {
            counts[rng.random_range(0..10usize)] += 1;
        }
        for c in counts {
            let frac = c as f64 / n as f64;
            assert!((frac - 0.1).abs() < 0.01, "bucket fraction {frac}");
        }
    }
}
