//! Statistical contract tests for the estimators: near-unbiasedness across
//! independent hash seeds, CLT coverage, and the Section 5.2.2 variance
//! claim that corrections beat direct estimates while staleness is small.

use stale_view_cleaning::core::estimate::{svc_aqp, svc_corr};
use stale_view_cleaning::core::{AggQuery, SvcConfig};
use stale_view_cleaning::relalg::scalar::col;
use stale_view_cleaning::sampling::operator::sample_by_key;
use stale_view_cleaning::stats::Moments;
use stale_view_cleaning::storage::{DataType, HashSpec, Schema, Table, Value};

/// Population of 4000 rows; the fresh version perturbs 5% of them slightly.
fn views() -> (Table, Table) {
    let schema = Schema::from_pairs(&[("id", DataType::Int), ("x", DataType::Float)]).unwrap();
    let mut stale = Table::new(schema.clone(), &["id"]).unwrap();
    let mut fresh = Table::new(schema, &["id"]).unwrap();
    for i in 0..4000i64 {
        let x = ((i * 31) % 173) as f64;
        stale.insert(vec![Value::Int(i), Value::Float(x)]).unwrap();
        let fx = if i % 20 == 0 { x + 25.0 } else { x };
        fresh.insert(vec![Value::Int(i), Value::Float(fx)]).unwrap();
    }
    (stale, fresh)
}

#[test]
fn aqp_sum_is_nearly_unbiased_over_seeds() {
    let (_, fresh) = views();
    let q = AggQuery::sum(col("x"));
    let truth = q.exact(&fresh).unwrap();
    let m = 0.1;
    let mut estimates = Moments::new();
    for seed in 0..60u64 {
        let sample = sample_by_key(&fresh, m, HashSpec::with_seed(seed));
        if sample.is_empty() {
            continue;
        }
        let cfg = SvcConfig::with_ratio(m).reseeded(seed);
        estimates.push(svc_aqp(&sample, &q, m, &cfg).unwrap().value);
    }
    let bias = (estimates.mean() - truth).abs() / truth;
    assert!(bias < 0.02, "mean over 60 seeds is {:.1} vs truth {truth:.1}", estimates.mean());
}

#[test]
fn clt_interval_coverage_is_near_nominal() {
    let (_, fresh) = views();
    let q = AggQuery::avg(col("x"));
    let truth = q.exact(&fresh).unwrap();
    let m = 0.15;
    let mut covered = 0;
    let mut total = 0;
    for seed in 0..80u64 {
        let sample = sample_by_key(&fresh, m, HashSpec::with_seed(seed * 7 + 1));
        if sample.len() < 30 {
            continue;
        }
        let cfg = SvcConfig::with_ratio(m).reseeded(seed);
        let est = svc_aqp(&sample, &q, m, &cfg).unwrap();
        total += 1;
        if est.ci.unwrap().contains(truth) {
            covered += 1;
        }
    }
    let rate = covered as f64 / total as f64;
    assert!(
        (0.85..=1.0).contains(&rate),
        "95% CLT interval covered the truth in {covered}/{total} runs"
    );
}

#[test]
fn corrections_have_lower_error_than_direct_estimates_when_staleness_is_small() {
    // Section 5.2.2: var(correction) < var(direct) while σ²_S ≤ 2 cov(S,S′).
    // With only 5% of rows changed, the samples are highly correlated.
    let (stale, fresh) = views();
    let q = AggQuery::sum(col("x"));
    let truth = q.exact(&fresh).unwrap();
    let stale_result = q.exact(&stale).unwrap();
    let m = 0.1;
    let mut corr_err = Moments::new();
    let mut aqp_err = Moments::new();
    for seed in 0..40u64 {
        let spec = HashSpec::with_seed(seed * 13 + 5);
        let s_hat = sample_by_key(&stale, m, spec);
        let f_hat = sample_by_key(&fresh, m, spec);
        if f_hat.is_empty() {
            continue;
        }
        let cfg = SvcConfig::with_ratio(m).reseeded(seed);
        let corr = svc_corr(stale_result, &s_hat, &f_hat, &q, m, &cfg).unwrap();
        let aqp = svc_aqp(&f_hat, &q, m, &cfg).unwrap();
        corr_err.push((corr.value - truth).powi(2));
        aqp_err.push((aqp.value - truth).powi(2));
    }
    assert!(
        corr_err.mean() < aqp_err.mean() / 4.0,
        "correction MSE {} should be far below direct MSE {}",
        corr_err.mean(),
        aqp_err.mean()
    );
}

#[test]
fn corrections_degrade_gracefully_as_staleness_grows() {
    // The break-even effect: with ALL rows changed, the direct estimate is
    // competitive with (or better than) the correction.
    fn mix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
    let schema = Schema::from_pairs(&[("id", DataType::Int), ("x", DataType::Float)]).unwrap();
    let mut stale = Table::new(schema.clone(), &["id"]).unwrap();
    let mut fresh = Table::new(schema, &["id"]).unwrap();
    for i in 0..3000i64 {
        // Independent values, with the STALE side more variable: the
        // correction inherits var(S) + var(S′) while the direct estimate
        // pays only var(S′).
        let sx = (mix(i as u64 ^ 0xAAAA) % 400) as f64;
        let fx = (mix(i as u64 ^ 0x5555) % 100) as f64;
        stale.insert(vec![Value::Int(i), Value::Float(sx)]).unwrap();
        fresh.insert(vec![Value::Int(i), Value::Float(fx)]).unwrap();
    }
    let q = AggQuery::sum(col("x"));
    let truth = q.exact(&fresh).unwrap();
    let stale_result = q.exact(&stale).unwrap();
    let m = 0.1;
    let mut corr_err = Moments::new();
    let mut aqp_err = Moments::new();
    for seed in 0..40u64 {
        let spec = HashSpec::with_seed(seed * 3 + 11);
        let s_hat = sample_by_key(&stale, m, spec);
        let f_hat = sample_by_key(&fresh, m, spec);
        if f_hat.is_empty() {
            continue;
        }
        let cfg = SvcConfig::with_ratio(m).reseeded(seed);
        let corr = svc_corr(stale_result, &s_hat, &f_hat, &q, m, &cfg).unwrap();
        let aqp = svc_aqp(&f_hat, &q, m, &cfg).unwrap();
        corr_err.push((corr.value - truth).powi(2));
        aqp_err.push((aqp.value - truth).powi(2));
    }
    // Past the break-even point, the direct estimate wins outright.
    assert!(
        aqp_err.mean() < corr_err.mean(),
        "AQP MSE {} vs CORR MSE {}",
        aqp_err.mean(),
        corr_err.mean()
    );
}
