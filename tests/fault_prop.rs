//! Chaos property harness: randomized failure schedules against the
//! mini-batch maintenance pipeline (`--features failpoints` only).
//!
//! For hundreds of seeded failure schedules — injected errors and panics at
//! table mutation, morsel execution, pool dispatch, batch compile /
//! evaluate / fold, and the fallback plan — maintenance either commits a
//! result bit-identical to the failure-free run or leaves the view at its
//! pre-maintain epoch with every delta unconsumed, and a clean re-run (or
//! quarantine recovery) always converges back to the failure-free state.
//! The base seed comes from `SVC_CHAOS_SEED` (default 0), so CI can sweep
//! distinct schedule families while any failure stays reproducible from
//! the seed printed in its assertion message.
//!
//! Float discipline: every measure in the workload is a multiple of 0.25,
//! so sums are exact in f64 and fold order cannot perturb low bits —
//! "bit-identical" is a meaningful cross-run claim, checked with
//! `Table::same_contents` (exact, order-insensitive), not an epsilon.
#![cfg(feature = "failpoints")]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Mutex, MutexGuard, Once, PoisonError};

use stale_view_cleaning::cluster::minibatch::{BatchPipeline, FailurePolicy};
use stale_view_cleaning::fault::{self, site, FailAction, FailSpec};
use stale_view_cleaning::ivm::view::MaterializedView;
use stale_view_cleaning::relalg::aggregate::{AggFunc, AggSpec};
use stale_view_cleaning::relalg::plan::{JoinKind, Plan};
use stale_view_cleaning::relalg::scalar::col;
use stale_view_cleaning::storage::{DataType, Database, Deltas, Schema, Table, Value};

/// The failpoint registry is process-global: every chaos test serializes
/// on this lock and clears the registry on entry and exit.
static CHAOS: Mutex<()> = Mutex::new(());

struct ChaosGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

impl Drop for ChaosGuard {
    fn drop(&mut self) {
        fault::clear_all();
    }
}

/// Take the chaos lock, clear stale schedules, and silence the panic hook
/// for injected panics (hundreds of expected unwinds would otherwise bury
/// real failures in backtrace noise).
fn chaos_guard() -> ChaosGuard {
    static QUIET: Once = Once::new();
    QUIET.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .is_some_and(|m| m.contains("failpoint"));
            if !injected {
                default_hook(info);
            }
        }));
    });
    let g = CHAOS.lock().unwrap_or_else(PoisonError::into_inner);
    fault::clear_all();
    ChaosGuard(g)
}

/// Base seed for the schedule sweep, so CI can run disjoint families.
fn base_seed() -> u64 {
    std::env::var("SVC_CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0)
}

fn chaos_db() -> Database {
    let mut db = Database::new();
    let mut video = Table::new(
        Schema::from_pairs(&[("videoId", DataType::Int), ("duration", DataType::Float)]).unwrap(),
        &["videoId"],
    )
    .unwrap();
    for v in 0..64i64 {
        // Multiples of 0.25: exactly representable, order-proof sums.
        video.insert(vec![Value::Int(v), Value::Float(0.25 * (1 + v % 13) as f64)]).unwrap();
    }
    let mut log = Table::new(
        Schema::from_pairs(&[("sessionId", DataType::Int), ("videoId", DataType::Int)]).unwrap(),
        &["sessionId"],
    )
    .unwrap();
    for s in 0..1_200i64 {
        log.insert(vec![Value::Int(s), Value::Int((s * 13 + 7) % 64)]).unwrap();
    }
    db.create_table("video", video);
    db.create_table("log", log);
    db
}

/// Change-table-eligible view: join + count/avg aggregate.
fn visit_view() -> Plan {
    Plan::scan("log")
        .join(Plan::scan("video"), JoinKind::Inner, &[("videoId", "videoId")])
        .aggregate(
            &["videoId"],
            vec![
                AggSpec::count_all("visits"),
                AggSpec::new("avgDur", AggFunc::Avg, col("duration")),
            ],
        )
}

/// Median is outside the change-table class: exercises the fallback plan.
fn median_view() -> Plan {
    Plan::scan("video")
        .aggregate(&["videoId"], vec![AggSpec::new("medDur", AggFunc::Median, col("duration"))])
}

fn log_stream(db: &Database, n: i64) -> Deltas {
    let mut deltas = Deltas::new();
    for s in 1_200..1_200 + n {
        deltas.insert(db, "log", vec![Value::Int(s), Value::Int(s % 64)]).unwrap();
    }
    for s in 0..n / 10 {
        deltas.delete(db, "log", &vec![Value::Int(s * 7), Value::Null]).unwrap();
    }
    deltas
}

fn video_stream(db: &Database, n: i64) -> Deltas {
    let mut deltas = Deltas::new();
    for v in 64..64 + n {
        deltas
            .insert(db, "video", vec![Value::Int(v), Value::Float(0.25 * (v % 9) as f64)])
            .unwrap();
    }
    deltas
}

const BATCH: usize = 97;

/// The failure-free pipeline result (registry cleared first) — the
/// bit-identical convergence target for every seeded run.
fn baseline(
    db: &Database,
    view: &MaterializedView,
    deltas: &Deltas,
    morsel: Option<usize>,
) -> Table {
    fault::clear_all();
    let mut pipeline = BatchPipeline::new(2);
    pipeline.morsel_size = morsel;
    let mut v = view.clone();
    pipeline.maintain(db, &mut v, deltas, BATCH).expect("failure-free baseline run");
    v.table().clone()
}

/// Sites a change-table maintain pass actually visits.
const MAINTAIN_SITES: [&str; 6] = [
    site::TABLE_MUTATE,
    site::EXEC_MORSEL,
    site::POOL_DISPATCH,
    site::BATCH_COMPILE,
    site::BATCH_EVALUATE,
    site::BATCH_FOLD,
];

/// Strict policy, ~140 seeds: every schedule either leaves the run
/// unscathed (bit-identical to baseline, epoch bumped once) or fails it
/// atomically (view bit-identical to its pre-maintain table, epoch
/// unchanged, deltas unconsumed) — and a clean re-run on the same pipeline
/// and pool always converges to the baseline.
#[test]
fn strict_runs_fail_atomically_and_converge() {
    let _g = chaos_guard();
    let db = chaos_db();
    let view = MaterializedView::create("v", visit_view(), &db).unwrap();
    let deltas = log_stream(&db, 600);
    let expected_plain = baseline(&db, &view, &deltas, None);
    let expected_morsel = baseline(&db, &view, &deltas, Some(16));
    assert!(expected_plain.same_contents(&expected_morsel), "morsel mode changed results");

    let base = base_seed();
    let mut injected_runs = 0u64;
    for i in 0..140u64 {
        let seed = base.wrapping_mul(1_000_003).wrapping_add(i);
        // Every third seed runs the merge/fallback plans morsel-parallel so
        // EXEC_MORSEL is reachable.
        let morsel = if i % 3 == 0 { Some(16) } else { None };
        let expected = &expected_plain;
        let schedule = fault::seeded_schedule(seed, &MAINTAIN_SITES, 48);

        let mut pipeline = BatchPipeline::new(2);
        pipeline.morsel_size = morsel;
        let mut v = view.clone();
        let pre_epoch = v.epoch();
        let pre_table = v.table().clone();

        fault::apply_schedule(&schedule);
        let fires_before = fault::fires_total();
        let outcome =
            catch_unwind(AssertUnwindSafe(|| pipeline.maintain(&db, &mut v, &deltas, BATCH)));
        let fired = fault::fires_total() - fires_before;
        fault::clear_all();
        injected_runs += u64::from(fired > 0);

        match outcome {
            Ok(Ok(run)) => {
                assert_eq!(run.quarantined, 0, "seed {seed}: strict policy cannot quarantine");
                assert!(
                    v.table().same_contents(expected),
                    "seed {seed} ({schedule:?}): Ok run diverged from failure-free baseline"
                );
                assert_eq!(v.epoch(), pre_epoch + 1, "seed {seed}: exactly one commit");
            }
            Ok(Err(e)) => {
                assert!(
                    e.to_string().contains("failpoint"),
                    "seed {seed} ({schedule:?}): non-injected error: {e}"
                );
                assert!(
                    v.table().same_contents(&pre_table),
                    "seed {seed} ({schedule:?}): failed run exposed a partial fold"
                );
                assert_eq!(v.epoch(), pre_epoch, "seed {seed}: failed run must not commit");
            }
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                    .unwrap_or_default();
                assert!(msg.contains("failpoint"), "seed {seed}: non-injected panic: {msg}");
                assert!(
                    v.table().same_contents(&pre_table),
                    "seed {seed} ({schedule:?}): unwound run exposed a partial fold"
                );
                assert_eq!(v.epoch(), pre_epoch, "seed {seed}: unwound run must not commit");
            }
        }

        // Clean re-run on the same pipeline and pool: deltas were never
        // consumed, so maintenance must now converge bit-identically.
        if v.epoch() == pre_epoch {
            pipeline.maintain(&db, &mut v, &deltas, BATCH).unwrap_or_else(|e| {
                panic!("seed {seed}: clean re-run failed after injected failure: {e}")
            });
            assert!(
                v.table().same_contents(expected),
                "seed {seed} ({schedule:?}): clean re-run diverged from baseline"
            );
        }
        let pm = pipeline.pool.metrics();
        assert_eq!(pm.queue_depth, 0, "seed {seed}: pool queue left non-empty");
    }
    assert!(
        injected_runs >= 40,
        "only {injected_runs}/140 schedules actually fired — sweep is toothless"
    );
}

/// Retry/quarantine policy, ~60 seeds (half seeded schedules, half forced
/// persistent failures): transient failures retry and still land the
/// baseline; persistent ones quarantine exactly their batch while the
/// pipeline keeps folding healthy batches, and both recovery paths
/// (re-driving the dead-letter queue, fallback recompute) converge.
#[test]
fn retry_quarantine_degrades_gracefully_and_recovers() {
    let _g = chaos_guard();
    let db = chaos_db();
    let view = MaterializedView::create("v", visit_view(), &db).unwrap();
    let deltas = log_stream(&db, 600);
    let expected = baseline(&db, &view, &deltas, None);
    let fresh_expected = view.recompute_fresh(&db, &deltas).unwrap();
    let n_batches = deltas.len().div_ceil(BATCH);

    let base = base_seed();
    let mut quarantined_runs = 0u64;
    for i in 0..60u64 {
        let seed = base.wrapping_mul(7_777_777).wrapping_add(1_000 + i);
        let pipeline = BatchPipeline::new(2)
            .with_policy(FailurePolicy::RetryQuarantine { retries: 1, backoff_ms: 0 });
        let mut v = view.clone();

        let forced = i % 2 == 1;
        if forced {
            // Persistent failure: exactly two fires (= attempts per batch),
            // so one batch exhausts its retries and quarantines while every
            // other batch passes.
            fault::set(
                site::BATCH_EVALUATE,
                FailSpec {
                    skip: seed % n_batches as u64,
                    count: 2,
                    action: if seed & 2 == 0 { FailAction::Error } else { FailAction::Panic },
                },
            );
        } else {
            fault::apply_schedule(&fault::seeded_schedule(seed, &MAINTAIN_SITES, 48));
        }
        let outcome =
            catch_unwind(AssertUnwindSafe(|| pipeline.maintain(&db, &mut v, &deltas, BATCH)));
        fault::clear_all();
        let run = match outcome {
            Ok(result) => result.unwrap_or_else(|e| {
                panic!("seed {seed}: retry policy must not error maintain: {e}")
            }),
            Err(payload) => {
                // Retries only cover batch attempts: a Panic-action site
                // hit on the driver *between* batches (e.g. table mutation
                // during delta partitioning) still unwinds — and the shadow
                // fold still guarantees atomicity. Check rollback, then
                // converge on a clean re-run and move on.
                assert!(!forced, "seed {seed}: forced schedule fires only inside a batch");
                let msg = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                    .unwrap_or_default();
                assert!(msg.contains("failpoint"), "seed {seed}: non-injected panic: {msg}");
                assert_eq!(v.epoch(), view.epoch(), "seed {seed}: unwound run must not commit");
                assert!(v.table().same_contents(view.table()), "seed {seed}: partial fold");
                pipeline.maintain(&db, &mut v, &deltas, BATCH).unwrap();
                assert!(v.table().same_contents(&expected), "seed {seed}: re-run diverged");
                continue;
            }
        };

        assert_eq!(run.batches, n_batches, "seed {seed}: every batch must be driven");
        if run.quarantined == 0 {
            assert!(
                v.table().same_contents(&expected),
                "seed {seed}: retried run diverged from failure-free baseline"
            );
            assert!(!v.is_dirty(), "seed {seed}: clean run left the view dirty");
            continue;
        }

        quarantined_runs += 1;
        assert!(v.is_dirty(), "seed {seed}: quarantine must mark the view dirty");
        assert!(forced || run.retries > 0, "seed {seed}: quarantine without retry attempts");
        let q = pipeline.quarantined();
        assert_eq!(q.len(), run.quarantined, "seed {seed}: queue/counter mismatch");
        assert!(
            q.iter().all(|e| e.error.contains("failpoint") && e.attempts == 2 && e.view == "v"),
            "seed {seed}: bad quarantine diagnosis: {q:?}"
        );
        if forced {
            assert_eq!(run.quarantined, 1, "seed {seed}: forced schedule hits one batch");
            assert!(
                !v.table().same_contents(&expected) || v.epoch() == view.epoch(),
                "seed {seed}: a quarantined batch cannot already be folded"
            );
        }

        if seed.is_multiple_of(2) {
            // Recovery arm A: re-drive the dead-letter queue (clean registry).
            let recovered = pipeline
                .retry_quarantined(&db, &mut v, BATCH)
                .unwrap_or_else(|e| panic!("seed {seed}: retry_quarantined failed: {e}"));
            assert_eq!(recovered, run.quarantined, "seed {seed}: every batch must recover");
            assert!(
                v.table().same_contents(&expected),
                "seed {seed}: late re-fold diverged from failure-free baseline"
            );
        } else {
            // Recovery arm B: fallback recompute over base ⊎ all deltas.
            pipeline
                .recover_via_recompute(&db, &mut v, &deltas)
                .unwrap_or_else(|e| panic!("seed {seed}: recompute recovery failed: {e}"));
            assert!(
                v.table().same_contents(&fresh_expected),
                "seed {seed}: recompute recovery diverged from ground truth"
            );
        }
        assert!(pipeline.quarantined().is_empty(), "seed {seed}: queue must drain");
        assert!(!v.is_dirty(), "seed {seed}: recovered view must be clean");
    }
    assert!(quarantined_runs >= 30, "only {quarantined_runs}/60 runs quarantined");
}

/// Dispatch panic storms, ~24 seeds: repeated injected panics in the
/// pool's task dispatch surface as session errors, never dead workers —
/// the same pipeline keeps maintaining afterwards, with the panic gauge
/// counting every storm.
#[test]
fn dispatch_panic_storms_leave_the_pool_maintaining() {
    let _g = chaos_guard();
    let db = chaos_db();
    let view = MaterializedView::create("v", visit_view(), &db).unwrap();
    let deltas = log_stream(&db, 400);
    let expected = baseline(&db, &view, &deltas, None);

    let base = base_seed();
    let pipeline = BatchPipeline::new(2);
    let mut storms = 0u64;
    for i in 0..24u64 {
        let seed = base.wrapping_mul(31).wrapping_add(i);
        fault::set(
            site::POOL_DISPATCH,
            // ~24 dispatch hits per maintain at this workload: keep the
            // skip inside that window so most storms actually land.
            FailSpec { skip: seed % 16, count: 1 + seed % 3, action: FailAction::Panic },
        );
        let panics_before = pipeline.pool.metrics().panics;
        let mut v = view.clone();
        let outcome = pipeline.maintain(&db, &mut v, &deltas, BATCH);
        let fired = fault::fired(site::POOL_DISPATCH);
        fault::clear_all();

        let panicked = pipeline.pool.metrics().panics - panics_before;
        assert_eq!(panicked, fired, "seed {seed}: every injected panic must be caught");
        match outcome {
            Ok(_) => assert!(
                v.table().same_contents(&expected),
                "seed {seed}: Ok maintain diverged under dispatch storm"
            ),
            Err(e) => {
                storms += 1;
                assert!(e.to_string().contains("panic"), "seed {seed}: unexpected error: {e}");
                assert!(v.table().same_contents(view.table()), "seed {seed}: partial commit");
            }
        }
        // The same pool must still maintain cleanly.
        let mut v = view.clone();
        pipeline.maintain(&db, &mut v, &deltas, BATCH).unwrap();
        assert!(v.table().same_contents(&expected), "seed {seed}: pool broken after storm");
    }
    assert!(storms >= 8, "only {storms}/24 storms actually failed a run");
}

/// Satellite regression: a failure in a late batch's fold must roll the
/// view back to its pre-maintain epoch — earlier shadow folds must never
/// have been committed — and the error must name the failing batch.
#[test]
fn partial_fold_failure_rolls_back_and_names_the_batch() {
    let _g = chaos_guard();
    let db = chaos_db();
    let view = MaterializedView::create("v", visit_view(), &db).unwrap();
    let deltas = log_stream(&db, 600);
    let expected = baseline(&db, &view, &deltas, None);

    let pipeline = BatchPipeline::new(2);
    let mut v = view.clone();
    // Let several folds succeed first, then fail one mid-run: the old
    // per-batch commit would have exposed exactly those early folds.
    fault::set(site::BATCH_FOLD, FailSpec { skip: 5, count: 1, action: FailAction::Error });
    let err = pipeline.maintain(&db, &mut v, &deltas, BATCH).expect_err("fold failure must abort");
    fault::clear_all();
    let msg = err.to_string();
    assert!(msg.contains("mini-batch") && msg.contains("deltas unconsumed"), "got: {msg}");
    assert!(msg.contains("failpoint"), "diagnosis must carry the cause: {msg}");
    assert_eq!(v.epoch(), view.epoch(), "failed maintain must not bump the epoch");
    assert!(v.table().same_contents(view.table()), "partial fold exposed");

    // Nothing was consumed: the same call now lands the baseline.
    pipeline.maintain(&db, &mut v, &deltas, BATCH).unwrap();
    assert!(v.table().same_contents(&expected));
}

/// Database for the partitioned-join chaos sweep: `video` carries a
/// non-key `ownerId` column, so a join on it cannot take the pk-probe
/// path — it must build a partitioned hash map, which is where the
/// `JOIN_BUILD` failpoint lives.
fn chaos_db_owner() -> Database {
    let mut db = Database::new();
    let mut video = Table::new(
        Schema::from_pairs(&[
            ("videoId", DataType::Int),
            ("ownerId", DataType::Int),
            ("duration", DataType::Float),
        ])
        .unwrap(),
        &["videoId"],
    )
    .unwrap();
    for v in 0..64i64 {
        video
            .insert(vec![
                Value::Int(v),
                Value::Int(v % 16),
                Value::Float(0.25 * (1 + v % 13) as f64),
            ])
            .unwrap();
    }
    let mut log = Table::new(
        Schema::from_pairs(&[("sessionId", DataType::Int), ("ownerId", DataType::Int)]).unwrap(),
        &["sessionId"],
    )
    .unwrap();
    for s in 0..600i64 {
        log.insert(vec![Value::Int(s), Value::Int((s * 13 + 7) % 16)]).unwrap();
    }
    db.create_table("video", video);
    db.create_table("log", log);
    db
}

/// Median keeps the view outside the change-table class (every batch runs
/// the fallback recompute), and the non-key equi-join forces a hash-map
/// build on the 64-row video side — larger than the 8-row morsels below,
/// so with `join_partitions = 4` every batch runs the parallel partitioned
/// build fan-out.
fn owner_median_view() -> Plan {
    Plan::scan("log")
        .join(Plan::scan("video"), JoinKind::Inner, &[("ownerId", "ownerId")])
        .aggregate(
            &["ownerId"],
            vec![AggSpec::new("medDur", AggFunc::Median, col("duration")), AggSpec::count_all("n")],
        )
}

/// Satellite regression, ~48 seeds: injected errors and panics inside the
/// partitioned join-build fan-out (scatter/build pass 2) abort the batch
/// atomically — the view stays bit-identical to its pre-maintain table at
/// its pre-maintain epoch with every delta unconsumed — and a clean re-run
/// on the same pipeline and pool converges to the failure-free baseline.
#[test]
fn join_build_failures_roll_back_atomically_and_converge() {
    let _g = chaos_guard();
    let db = chaos_db_owner();
    let view = MaterializedView::create("o", owner_median_view(), &db).unwrap();
    let mut deltas = Deltas::new();
    for s in 600..840i64 {
        deltas.insert(&db, "log", vec![Value::Int(s), Value::Int(s % 16)]).unwrap();
    }

    let mk_pipeline = || {
        let mut p = BatchPipeline::new(2);
        p.morsel_size = Some(8);
        p.join_partitions = 4;
        p
    };
    let expected = {
        fault::clear_all();
        let mut v = view.clone();
        mk_pipeline().maintain(&db, &mut v, &deltas, BATCH).expect("failure-free baseline");
        v.table().clone()
    };

    // Reachability gate: an always-on error spec must actually fire inside
    // this workload's build fan-out, or the whole sweep is vacuous.
    {
        let mut v = view.clone();
        fault::set(site::JOIN_BUILD, FailSpec::immediate(u64::MAX, FailAction::Error));
        let err = mk_pipeline()
            .maintain(&db, &mut v, &deltas, BATCH)
            .expect_err("partitioned build must be on this workload's path");
        assert!(err.to_string().contains("failpoint"), "got: {err}");
        assert!(fault::fired(site::JOIN_BUILD) > 0, "JOIN_BUILD failpoint never reached");
        fault::clear_all();
        assert!(v.table().same_contents(view.table()) && v.epoch() == view.epoch());
    }

    let base = base_seed();
    let mut injected_runs = 0u64;
    for i in 0..48u64 {
        let seed = base.wrapping_mul(424_243).wrapping_add(i);
        // 4 partition tasks per build, one build per batch: keep the skip
        // inside the first couple of builds so most seeds land mid-build.
        fault::set(
            site::JOIN_BUILD,
            FailSpec {
                skip: seed % 6,
                count: 1 + seed % 2,
                action: if i % 2 == 0 { FailAction::Error } else { FailAction::Panic },
            },
        );

        let pipeline = mk_pipeline();
        let mut v = view.clone();
        let pre_epoch = v.epoch();
        let outcome =
            catch_unwind(AssertUnwindSafe(|| pipeline.maintain(&db, &mut v, &deltas, BATCH)));
        let fired = fault::fired(site::JOIN_BUILD);
        fault::clear_all();
        injected_runs += u64::from(fired > 0);

        match outcome {
            Ok(Ok(_)) => {
                assert_eq!(fired, 0, "seed {seed}: a fired build failpoint cannot commit");
                assert!(v.table().same_contents(&expected), "seed {seed}: diverged");
            }
            Ok(Err(e)) => {
                assert!(
                    e.to_string().contains("failpoint"),
                    "seed {seed}: non-injected error: {e}"
                );
                assert!(
                    v.table().same_contents(view.table()),
                    "seed {seed}: mid-build failure exposed a partial fold"
                );
                assert_eq!(v.epoch(), pre_epoch, "seed {seed}: failed run must not commit");
            }
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                    .unwrap_or_default();
                assert!(msg.contains("failpoint"), "seed {seed}: non-injected panic: {msg}");
                assert!(
                    v.table().same_contents(view.table()),
                    "seed {seed}: mid-build panic exposed a partial fold"
                );
                assert_eq!(v.epoch(), pre_epoch, "seed {seed}: unwound run must not commit");
            }
        }

        // Deltas were never consumed on failure: the same pipeline and pool
        // must now converge bit-identically to the baseline.
        if v.epoch() == pre_epoch {
            pipeline.maintain(&db, &mut v, &deltas, BATCH).unwrap_or_else(|e| {
                panic!("seed {seed}: clean re-run failed after injected build failure: {e}")
            });
            assert!(
                v.table().same_contents(&expected),
                "seed {seed}: clean re-run diverged from baseline"
            );
        }
        assert_eq!(pipeline.pool.metrics().queue_depth, 0, "seed {seed}: queue left non-empty");
    }
    assert!(
        injected_runs >= 24,
        "only {injected_runs}/48 schedules fired inside the build fan-out — sweep is toothless"
    );
}

/// Satellite regression: the non-change-table fallback path quarantines
/// the whole pending set as one batch and recovers via recompute.
#[test]
fn fallback_failure_quarantines_whole_pending_and_recovers() {
    let _g = chaos_guard();
    let db = chaos_db();
    let view = MaterializedView::create("m", median_view(), &db).unwrap();
    let deltas = video_stream(&db, 40);
    let fresh_expected = view.recompute_fresh(&db, &deltas).unwrap();

    let pipeline = BatchPipeline::new(2)
        .with_policy(FailurePolicy::RetryQuarantine { retries: 1, backoff_ms: 0 });
    let mut v = view;
    fault::set(site::BATCH_FALLBACK, FailSpec::immediate(2, FailAction::Error));
    let run = pipeline.maintain(&db, &mut v, &deltas, BATCH).unwrap();
    fault::clear_all();
    assert_eq!((run.fallback_batches, run.quarantined, run.retries), (1, 1, 1));
    assert!(v.is_dirty());
    let q = pipeline.quarantined();
    assert_eq!(q.len(), 1);
    assert_eq!((q[0].batch_index, q[0].records), (0, deltas.len()));

    pipeline.recover_via_recompute(&db, &mut v, &deltas).unwrap();
    assert!(v.table().same_contents(&fresh_expected));
    assert!(!v.is_dirty() && pipeline.quarantined().is_empty());
}
