//! Shared randomized-workload generators for the executor equivalence
//! harnesses (`tests/exec_prop.rs`, `tests/morsel_prop.rs`,
//! `tests/partition_prop.rs`): a snowflake fact/dim database, plan shapes
//! covering every operator the executor lowers, adversarial join-key
//! distributions, and signed delta streams. One copy, so the harnesses
//! always test the same plan space.

// Each harness binary compiles its own copy of this module and uses a
// different subset of the generators.
#![allow(dead_code)]

use stale_view_cleaning::relalg::aggregate::{AggFunc, AggSpec};
use stale_view_cleaning::relalg::plan::{JoinKind, Plan};
use stale_view_cleaning::relalg::scalar::{col, lit};
use stale_view_cleaning::storage::{DataType, Database, Deltas, Schema, Table, Value};

pub fn build_db(n_facts: usize, n_dims: usize, data_seed: u64) -> Database {
    let mut s = data_seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    let mut db = Database::new();
    let mut dim = Table::new(
        Schema::from_pairs(&[
            ("dimId", DataType::Int),
            ("weight", DataType::Float),
            ("tag", DataType::Int),
        ])
        .unwrap(),
        &["dimId"],
    )
    .unwrap();
    for i in 0..n_dims as i64 {
        dim.insert(vec![
            Value::Int(i),
            Value::Float((next() % 100) as f64 / 100.0),
            Value::Int((next() % 5) as i64),
        ])
        .unwrap();
    }
    let mut fact = Table::new(
        Schema::from_pairs(&[
            ("factId", DataType::Int),
            ("dimId", DataType::Int),
            ("x", DataType::Float),
            ("y", DataType::Float),
        ])
        .unwrap(),
        &["factId"],
    )
    .unwrap();
    for i in 0..n_facts as i64 {
        fact.insert(vec![
            Value::Int(i),
            Value::Int((next() % n_dims as u64) as i64),
            Value::Float((next() % 1000) as f64 / 1000.0),
            Value::Float((next() % 500) as f64 / 100.0),
        ])
        .unwrap();
    }
    db.create_table("dim", dim);
    db.create_table("fact", fact);
    db
}

/// Plan shapes exercising every operator the executor lowers: fused σ/Π/η
/// chains, FK joins (PK-probe), non-key joins (hash build), outer joins,
/// aggregates over fused scans, and set operations.
pub fn plan_variant(variant: u8) -> Plan {
    match variant % 8 {
        0 => Plan::scan("fact")
            .join(Plan::scan("dim"), JoinKind::Inner, &[("dimId", "dimId")])
            .select(col("x").gt(lit(0.3)).and(col("weight").lt(lit(0.8)))),
        1 => Plan::scan("fact")
            .join(Plan::scan("dim"), JoinKind::Inner, &[("dimId", "dimId")])
            .aggregate(
                &["dimId"],
                vec![AggSpec::count_all("n"), AggSpec::new("sx", AggFunc::Sum, col("x"))],
            )
            .select(col("n").gt(lit(1i64)).and(col("dimId").lt(lit(10i64)))),
        2 => Plan::scan("fact")
            .project(vec![
                ("factId", col("factId")),
                ("dimId", col("dimId")),
                ("x2", col("x").mul(lit(2.0))),
            ])
            .select(col("x2").gt(lit(0.5))),
        3 => Plan::scan("fact")
            .select(col("x").lt(lit(0.7)))
            .union(Plan::scan("fact").select(col("x").ge(lit(0.4))))
            .select(col("dimId").lt(lit(6i64))),
        4 => Plan::scan("fact")
            .join(Plan::scan("dim"), JoinKind::Left, &[("dimId", "dimId")])
            .select(col("y").gt(lit(1.0)).and(col("weight").gt(lit(0.1)))),
        5 => Plan::scan("fact")
            .select(col("dimId").lt(lit(8i64)))
            .difference(Plan::scan("fact").select(col("x").gt(lit(0.8))))
            .select(col("y").lt(lit(4.0))),
        6 => Plan::scan("fact")
            .join(Plan::scan("dim"), JoinKind::Inner, &[("dimId", "dimId")])
            .aggregate(&["dimId", "tag"], vec![AggSpec::new("sy", AggFunc::Sum, col("y"))])
            .project(vec![("dimId", col("dimId")), ("tag", col("tag")), ("sy", col("sy"))]),
        _ => Plan::scan("fact")
            .join(Plan::scan("dim"), JoinKind::Full, &[("dimId", "dimId")])
            .select(col("x").gt(lit(0.2)).or(col("weight").gt(lit(0.5)))),
    }
}

/// A database whose one table is null-heavy and type-mixed: every column
/// except the key carries a sizable null fraction (exercising the
/// columnar validity masks), and `m` mixes Int/Float/Str values in a
/// single column (demoting its columnar extraction to the `Mixed`
/// fallback and exercising cross-type-rank comparisons).
pub fn build_db_mixed(n_rows: usize, data_seed: u64) -> Database {
    let mut s = data_seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    let mut t = Table::new(
        Schema::from_pairs(&[
            ("id", DataType::Int),
            ("a", DataType::Int),
            ("x", DataType::Float),
            ("m", DataType::Str),
            ("flag", DataType::Bool),
        ])
        .unwrap(),
        &["id"],
    )
    .unwrap();
    for i in 0..n_rows as i64 {
        let r = next();
        let a = match r % 3 {
            0 => Value::Null,
            _ => Value::Int((r % 50) as i64),
        };
        let x = match (r >> 8) % 4 {
            0 => Value::Null,
            _ => Value::Float(((r >> 8) % 1000) as f64 / 100.0),
        };
        let m = match (r >> 16) % 5 {
            0 => Value::Null,
            1 => Value::Int(((r >> 16) % 20) as i64),
            2 => Value::Float(((r >> 16) % 30) as f64 / 3.0),
            _ => Value::str(format!("s{}", (r >> 16) % 8)),
        };
        let flag = match (r >> 24) % 3 {
            0 => Value::Null,
            1 => Value::Bool(false),
            _ => Value::Bool(true),
        };
        t.insert(vec![Value::Int(i), a, x, m, flag]).unwrap();
    }
    let mut db = Database::new();
    db.create_table("mixed", t);
    db
}

/// Plan shapes over the [`build_db_mixed`] table, aimed at the vectorized
/// kernels' null and Mixed paths: typed column-vs-literal comparisons
/// under validity masks, IsNull (plain and negated), And/Or composition,
/// column-vs-column with nulls on both sides, cross-type-rank literals,
/// arithmetic projections over nullable inputs, γ with null group keys,
/// and η over a nullable key.
pub fn mixed_plan_variant(variant: u8) -> Plan {
    match variant % 7 {
        // Int column vs Int literal: nulls must never match.
        0 => Plan::scan("mixed").select(col("a").gt(lit(10i64))),
        // Float vs literal AND a negated IsNull (the Not(IsNull) kernel).
        1 => Plan::scan("mixed").select(col("x").le(lit(5.0)).and(col("a").is_null().not())),
        // Str literal over the type-mixed column (Mixed fallback).
        2 => Plan::scan("mixed").select(col("m").eq(lit("s3"))),
        // Bool kernel, then an arithmetic projection over nullable Int.
        3 => Plan::scan("mixed")
            .select(col("flag").eq(lit(true)))
            .project(vec![("id", col("id")), ("a2", col("a").mul(lit(2i64)))]),
        // Column-vs-column with nulls on both sides, cross-type Int/Float.
        4 => Plan::scan("mixed")
            .select(col("a").lt(col("x")))
            .project(vec![("id", col("id")), ("ax", col("a").add(col("x")))]),
        // Or composition with IsNull; γ grouping on a nullable key.
        5 => Plan::scan("mixed").select(col("m").is_null().or(col("a").gt(lit(25i64)))).aggregate(
            &["a"],
            vec![AggSpec::count_all("n"), AggSpec::new("sx", AggFunc::Sum, col("x"))],
        ),
        // Cross-type-rank literal over Mixed (Int literal vs Str values),
        // then η over the (non-null) primary key.
        _ => Plan::scan("mixed").select(col("m").gt(lit(5i64))),
    }
}

/// `n` distinct Int key values whose [`join_hash`] values collide in their
/// low 12 bits — they land in the same hash partition for every partition
/// count up to 4096, driving the partitioned join's skew path as hard as
/// an adversary can without full 64-bit collisions.
///
/// [`join_hash`]: stale_view_cleaning::relalg::join::join_hash
pub fn colliding_int_keys(n: usize) -> Vec<i64> {
    use stale_view_cleaning::relalg::join::join_hash;
    use stale_view_cleaning::storage::Value;
    let spec = join_hash();
    let low = |v: i64| spec.hash_key(&[Value::Int(v)]) & 0xFFF;
    let target = low(0);
    let mut out = vec![0i64];
    let mut x = 1i64;
    while out.len() < n {
        if low(x) == target {
            out.push(x);
        }
        x += 1;
    }
    out
}

/// Adversarial join-key distributions for the partition equivalence
/// harness: a fact table whose `dimId` column is drawn from one of four
/// hostile distributions, and a dim table whose non-key `altId` column
/// carries duplicates (so `dimId = altId` joins always take the hash-build
/// path, never the PK probe).
///
/// `skew % 4` selects the distribution:
/// * `0` — Zipf-like geometric skew (key `k` with probability `~2^-k`):
///   a handful of keys hold most rows, deep chains in few partitions.
/// * `1` — all rows one key: the worst partition imbalance possible; one
///   partition holds the entire build side.
/// * `2` — null-heavy: ~half the join keys are NULL (never match, never
///   enter the build maps — exercising the null-skip on both hash twins).
/// * `3` — hash-collision-prone: distinct keys whose [`join_hash`] values
///   share their low 12 bits ([`colliding_int_keys`]), so every key lands
///   in the same partition at any realistic partition count.
///
/// [`join_hash`]: stale_view_cleaning::relalg::join::join_hash
pub fn build_db_adversarial(n_facts: usize, skew: u8, data_seed: u64) -> Database {
    let mut s = data_seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    let colliders = colliding_int_keys(8);
    let key_domain: Vec<i64> = match skew % 4 {
        3 => colliders.clone(),
        _ => (0..16).collect(),
    };
    let mut dim = Table::new(
        Schema::from_pairs(&[
            ("dimId", DataType::Int),
            ("altId", DataType::Int),
            ("weight", DataType::Float),
        ])
        .unwrap(),
        &["dimId"],
    )
    .unwrap();
    for i in 0..32i64 {
        dim.insert(vec![
            Value::Int(i),
            // Duplicated non-key join column over the same key domain.
            Value::Int(key_domain[i as usize % key_domain.len()]),
            Value::Float(0.25 * (i % 7) as f64),
        ])
        .unwrap();
    }
    let mut fact = Table::new(
        Schema::from_pairs(&[
            ("factId", DataType::Int),
            ("dimId", DataType::Int),
            ("x", DataType::Float),
        ])
        .unwrap(),
        &["factId"],
    )
    .unwrap();
    for i in 0..n_facts as i64 {
        let r = next();
        let key = match skew % 4 {
            // Geometric: P(k) ~ 2^-(k+1), capped at 15.
            0 => Value::Int(i64::from(r.trailing_zeros().min(15))),
            1 => Value::Int(7),
            2 => {
                if r % 2 == 0 {
                    Value::Null
                } else {
                    Value::Int(((r >> 1) % 16) as i64)
                }
            }
            _ => Value::Int(colliders[(r % colliders.len() as u64) as usize]),
        };
        fact.insert(vec![Value::Int(i), key, Value::Float(0.25 * ((r >> 32) % 40) as f64)])
            .unwrap();
    }
    let mut db = Database::new();
    db.create_table("dim", dim);
    db.create_table("fact", fact);
    db
}

/// Plan shapes over [`build_db_adversarial`] aimed at the partitioned
/// paths: every join targets the *non-key* `altId` column (hash build,
/// duplicate right keys, matched-bitmap outer emission) and the set ops
/// exercise the partitioned whole-row dedup.
pub fn adversarial_plan_variant(variant: u8) -> Plan {
    match variant % 8 {
        0 => Plan::scan("fact").join(Plan::scan("dim"), JoinKind::Inner, &[("dimId", "altId")]),
        1 => Plan::scan("fact")
            .join(Plan::scan("dim"), JoinKind::Left, &[("dimId", "altId")])
            .select(col("weight").gt(lit(0.4)).or(col("weight").is_null())),
        2 => Plan::scan("fact").join(Plan::scan("dim"), JoinKind::Full, &[("dimId", "altId")]),
        3 => Plan::scan("fact").join(Plan::scan("dim"), JoinKind::Anti, &[("dimId", "altId")]),
        4 => Plan::scan("fact").join(Plan::scan("dim"), JoinKind::Semi, &[("dimId", "altId")]),
        5 => Plan::scan("fact")
            .select(col("x").lt(lit(7.0)))
            .union(Plan::scan("fact").select(col("x").ge(lit(3.0)))),
        6 => Plan::scan("fact")
            .difference(Plan::scan("fact").select(col("x").gt(lit(5.0))))
            .intersect(Plan::scan("fact").select(col("x").le(lit(9.0)))),
        _ => Plan::scan("fact")
            .join(Plan::scan("dim"), JoinKind::Inner, &[("dimId", "altId")])
            .aggregate(
                &["dimId"],
                vec![AggSpec::count_all("n"), AggSpec::new("sw", AggFunc::Sum, col("weight"))],
            ),
    }
}

pub fn random_deltas(db: &Database, ops: &[(u8, u64)]) -> Deltas {
    let mut deltas = Deltas::new();
    let n_facts = db.table("fact").unwrap().len() as i64;
    let n_dims = db.table("dim").unwrap().len() as i64;
    let mut next_fact = 1_000_000i64;
    for &(op, r) in ops {
        match op % 3 {
            0 => {
                deltas
                    .insert(
                        db,
                        "fact",
                        vec![
                            Value::Int(next_fact),
                            Value::Int((r % n_dims as u64) as i64),
                            Value::Float((r % 100) as f64 / 100.0),
                            Value::Float((r % 77) as f64 / 10.0),
                        ],
                    )
                    .unwrap();
                next_fact += 1;
            }
            1 => {
                let id = (r % n_facts as u64) as i64;
                let _ = deltas.delete(
                    db,
                    "fact",
                    &vec![Value::Int(id), Value::Null, Value::Null, Value::Null],
                );
            }
            _ => {
                let id = (r % n_facts as u64) as i64;
                let _ = deltas.update(
                    db,
                    "fact",
                    vec![
                        Value::Int(id),
                        Value::Int(((r / 7) % n_dims as u64) as i64),
                        Value::Float((r % 91) as f64 / 91.0),
                        Value::Float((r % 13) as f64),
                    ],
                );
            }
        }
    }
    deltas
}
