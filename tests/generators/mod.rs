//! Shared randomized-workload generators for the executor equivalence
//! harnesses (`tests/exec_prop.rs`, `tests/morsel_prop.rs`): a snowflake
//! fact/dim database, plan shapes covering every operator the executor
//! lowers, and signed delta streams. One copy, so both harnesses always
//! test the same plan space.

use stale_view_cleaning::relalg::aggregate::{AggFunc, AggSpec};
use stale_view_cleaning::relalg::plan::{JoinKind, Plan};
use stale_view_cleaning::relalg::scalar::{col, lit};
use stale_view_cleaning::storage::{DataType, Database, Deltas, Schema, Table, Value};

pub fn build_db(n_facts: usize, n_dims: usize, data_seed: u64) -> Database {
    let mut s = data_seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    let mut db = Database::new();
    let mut dim = Table::new(
        Schema::from_pairs(&[
            ("dimId", DataType::Int),
            ("weight", DataType::Float),
            ("tag", DataType::Int),
        ])
        .unwrap(),
        &["dimId"],
    )
    .unwrap();
    for i in 0..n_dims as i64 {
        dim.insert(vec![
            Value::Int(i),
            Value::Float((next() % 100) as f64 / 100.0),
            Value::Int((next() % 5) as i64),
        ])
        .unwrap();
    }
    let mut fact = Table::new(
        Schema::from_pairs(&[
            ("factId", DataType::Int),
            ("dimId", DataType::Int),
            ("x", DataType::Float),
            ("y", DataType::Float),
        ])
        .unwrap(),
        &["factId"],
    )
    .unwrap();
    for i in 0..n_facts as i64 {
        fact.insert(vec![
            Value::Int(i),
            Value::Int((next() % n_dims as u64) as i64),
            Value::Float((next() % 1000) as f64 / 1000.0),
            Value::Float((next() % 500) as f64 / 100.0),
        ])
        .unwrap();
    }
    db.create_table("dim", dim);
    db.create_table("fact", fact);
    db
}

/// Plan shapes exercising every operator the executor lowers: fused σ/Π/η
/// chains, FK joins (PK-probe), non-key joins (hash build), outer joins,
/// aggregates over fused scans, and set operations.
pub fn plan_variant(variant: u8) -> Plan {
    match variant % 8 {
        0 => Plan::scan("fact")
            .join(Plan::scan("dim"), JoinKind::Inner, &[("dimId", "dimId")])
            .select(col("x").gt(lit(0.3)).and(col("weight").lt(lit(0.8)))),
        1 => Plan::scan("fact")
            .join(Plan::scan("dim"), JoinKind::Inner, &[("dimId", "dimId")])
            .aggregate(
                &["dimId"],
                vec![AggSpec::count_all("n"), AggSpec::new("sx", AggFunc::Sum, col("x"))],
            )
            .select(col("n").gt(lit(1i64)).and(col("dimId").lt(lit(10i64)))),
        2 => Plan::scan("fact")
            .project(vec![
                ("factId", col("factId")),
                ("dimId", col("dimId")),
                ("x2", col("x").mul(lit(2.0))),
            ])
            .select(col("x2").gt(lit(0.5))),
        3 => Plan::scan("fact")
            .select(col("x").lt(lit(0.7)))
            .union(Plan::scan("fact").select(col("x").ge(lit(0.4))))
            .select(col("dimId").lt(lit(6i64))),
        4 => Plan::scan("fact")
            .join(Plan::scan("dim"), JoinKind::Left, &[("dimId", "dimId")])
            .select(col("y").gt(lit(1.0)).and(col("weight").gt(lit(0.1)))),
        5 => Plan::scan("fact")
            .select(col("dimId").lt(lit(8i64)))
            .difference(Plan::scan("fact").select(col("x").gt(lit(0.8))))
            .select(col("y").lt(lit(4.0))),
        6 => Plan::scan("fact")
            .join(Plan::scan("dim"), JoinKind::Inner, &[("dimId", "dimId")])
            .aggregate(&["dimId", "tag"], vec![AggSpec::new("sy", AggFunc::Sum, col("y"))])
            .project(vec![("dimId", col("dimId")), ("tag", col("tag")), ("sy", col("sy"))]),
        _ => Plan::scan("fact")
            .join(Plan::scan("dim"), JoinKind::Full, &[("dimId", "dimId")])
            .select(col("x").gt(lit(0.2)).or(col("weight").gt(lit(0.5)))),
    }
}

pub fn random_deltas(db: &Database, ops: &[(u8, u64)]) -> Deltas {
    let mut deltas = Deltas::new();
    let n_facts = db.table("fact").unwrap().len() as i64;
    let n_dims = db.table("dim").unwrap().len() as i64;
    let mut next_fact = 1_000_000i64;
    for &(op, r) in ops {
        match op % 3 {
            0 => {
                deltas
                    .insert(
                        db,
                        "fact",
                        vec![
                            Value::Int(next_fact),
                            Value::Int((r % n_dims as u64) as i64),
                            Value::Float((r % 100) as f64 / 100.0),
                            Value::Float((r % 77) as f64 / 10.0),
                        ],
                    )
                    .unwrap();
                next_fact += 1;
            }
            1 => {
                let id = (r % n_facts as u64) as i64;
                let _ = deltas.delete(
                    db,
                    "fact",
                    &vec![Value::Int(id), Value::Null, Value::Null, Value::Null],
                );
            }
            _ => {
                let id = (r % n_facts as u64) as i64;
                let _ = deltas.update(
                    db,
                    "fact",
                    vec![
                        Value::Int(id),
                        Value::Int(((r / 7) % n_dims as u64) as i64),
                        Value::Float((r % 91) as f64 / 91.0),
                        Value::Float((r % 13) as f64),
                    ],
                );
            }
        }
    }
    deltas
}
