//! Property tests for the compile-once streaming executor: for randomized
//! databases, plan shapes, and delta workloads, `compile(plan).run(b)`
//! produces a table equal to the legacy materializing evaluator — on query
//! plans, on optimized plans, and on the maintenance-strategy plans that
//! `svc-ivm` compiles (evaluated under full maintenance bindings). Plus a
//! regression test that `BatchPipeline`'s compiled-plan cache invalidates
//! on repartition without changing results.

use proptest::prelude::*;

mod generators;
use generators::{
    adversarial_plan_variant, build_db, build_db_adversarial, build_db_mixed, mixed_plan_variant,
    plan_variant, random_deltas,
};

use stale_view_cleaning::cluster::minibatch::BatchPipeline;
use stale_view_cleaning::ivm::view::{maintenance_bindings, MaterializedView};
use stale_view_cleaning::relalg::aggregate::{AggFunc, AggSpec};
use stale_view_cleaning::relalg::eval::{evaluate_materializing, Bindings};
use stale_view_cleaning::relalg::exec::compile;
use stale_view_cleaning::relalg::optimizer::optimize;
use stale_view_cleaning::relalg::plan::{JoinKind, Plan};
use stale_view_cleaning::relalg::scalar::{col, lit};
use stale_view_cleaning::storage::{DataType, Database, HashSpec, Schema, Table, Value};

/// Regression: `BatchPipeline` compiles each per-partition plan set at
/// most once per partitioning epoch, recompiles after a repartition, and
/// stays exact throughout — on a mixed insert/delete/update stream whose
/// chunk signatures vary across batches.
#[test]
fn batch_pipeline_cache_survives_repartitions_exactly() {
    let db = build_db(400, 12, 3);
    let view_def = Plan::scan("fact")
        .join(Plan::scan("dim"), JoinKind::Inner, &[("dimId", "dimId")])
        .aggregate(
            &["dimId"],
            vec![AggSpec::count_all("n"), AggSpec::new("avgx", AggFunc::Avg, col("x"))],
        );
    let view = MaterializedView::create("v", view_def, &db).unwrap();
    let ops: Vec<(u8, u64)> = (0..240u64).map(|i| ((i % 3) as u8, i * 131 + 7)).collect();
    let deltas = random_deltas(&db, &ops);
    let expected = view.recompute_fresh(&db, &deltas).unwrap();

    let mut pipeline = BatchPipeline::new(2);
    let mut v = view.clone();
    let run = pipeline.maintain(&db, &mut v, &deltas, 30).unwrap();
    assert!(run.batches > 3, "enough batches to exercise the cache");
    let first_epoch_compiles = pipeline.plan_compiles();
    assert!(
        first_epoch_compiles < run.batches,
        "cache must amortize: {first_epoch_compiles} compiles over {} batches",
        run.batches
    );
    assert!(v.table().approx_same_contents(&expected, 1e-9), "first epoch diverged");

    // Same stream again: every signature is already compiled.
    let mut v2 = view.clone();
    pipeline.maintain(&db, &mut v2, &deltas, 30).unwrap();
    assert_eq!(pipeline.plan_compiles(), first_epoch_compiles, "replay must not recompile");
    assert!(v2.table().approx_same_contents(&expected, 1e-9));

    // Repartition: new epoch, plans recompile, results stay exact.
    pipeline.partitions = 5;
    let mut v3 = view;
    pipeline.maintain(&db, &mut v3, &deltas, 30).unwrap();
    assert!(
        pipeline.plan_compiles() > first_epoch_compiles,
        "repartition must invalidate the compiled-plan cache"
    );
    assert!(v3.table().approx_same_contents(&expected, 1e-9), "post-repartition diverged");
}

/// Regression: two live pipeline clones share one compiled-plan cache but
/// may be attached to *different* statistics catalogs. Entries are keyed
/// by catalog identity, so alternating maintenance calls replay their own
/// compiled plans; the pre-fix behavior (one catalog slot, full flush on
/// mismatch) had the clones wiping each other's entries on every lookup
/// and recompiling every single pass.
#[test]
fn batch_pipeline_cache_is_shared_across_catalogs() {
    use stale_view_cleaning::catalog::Catalog;
    use std::sync::Arc;

    let db = build_db(300, 10, 3);
    let view_def = Plan::scan("fact")
        .join(Plan::scan("dim"), JoinKind::Inner, &[("dimId", "dimId")])
        .aggregate(
            &["dimId"],
            vec![AggSpec::count_all("n"), AggSpec::new("avgx", AggFunc::Avg, col("x"))],
        );
    let view = MaterializedView::create("v", view_def, &db).unwrap();
    // Insert-only stream: one chunk signature, so each (catalog, epoch)
    // pair should compile exactly one plan set, ever.
    let ops: Vec<(u8, u64)> = (0..90u64).map(|i| (0u8, i * 131 + 7)).collect();
    let deltas = random_deltas(&db, &ops);
    let expected = view.recompute_fresh(&db, &deltas).unwrap();

    let p1 = BatchPipeline::new(2).with_catalog(Arc::new(Catalog::build(&db)));
    let mut p2 = p1.clone();
    p2.catalog = Some(Arc::new(Catalog::build(&db)));

    // Warm one entry per clone.
    for p in [&p1, &p2] {
        let mut v = view.clone();
        p.maintain(&db, &mut v, &deltas, 30).unwrap();
        assert!(v.table().approx_same_contents(&expected, 1e-9));
    }
    let warm = p1.plan_compiles();
    assert_eq!(warm, 2, "one compile per catalog identity");

    // Alternating catalogs must replay the cache, not thrash it.
    for _ in 0..3 {
        for p in [&p1, &p2] {
            let mut v = view.clone();
            p.maintain(&db, &mut v, &deltas, 30).unwrap();
            assert!(v.table().approx_same_contents(&expected, 1e-9));
        }
    }
    assert_eq!(
        p1.plan_compiles(),
        warm,
        "clones on different catalogs must not wipe each other's cache entries"
    );
}

/// Regression (ROADMAP item): a base-schema change between maintenance
/// calls must *invalidate* the compiled-plan cache — recompiling against
/// the new shapes — instead of the cached plans failing leaf validation
/// forever. Combined with a repartition to cover the interacting epochs.
#[test]
fn batch_pipeline_recompiles_on_base_schema_change() {
    let db = build_db(300, 10, 5);
    let view_def = Plan::scan("fact")
        .join(Plan::scan("dim"), JoinKind::Inner, &[("dimId", "dimId")])
        .aggregate(
            &["dimId"],
            vec![AggSpec::count_all("n"), AggSpec::new("sx", AggFunc::Sum, col("x"))],
        );
    let view = MaterializedView::create("v", view_def, &db).unwrap();
    let ops: Vec<(u8, u64)> = (0..120u64).map(|i| (0u8, i * 37 + 5)).collect();
    let deltas = random_deltas(&db, &ops);

    let mut pipeline = BatchPipeline::new(2);
    let mut v = view.clone();
    pipeline.maintain(&db, &mut v, &deltas, 40).unwrap();
    let warm_compiles = pipeline.plan_compiles();
    assert!(warm_compiles >= 1);
    assert!(v.table().approx_same_contents(&view.recompute_fresh(&db, &deltas).unwrap(), 1e-9));

    // The `dim` base table gains a trailing column: same name, new schema.
    // The view definition still derives (columns are resolved by name), but
    // every cached compiled plan's `dim` leaf is now shape-invalid.
    let mut db2 = Database::new();
    db2.create_table("fact", db.table("fact").unwrap().clone());
    let old_dim = db.table("dim").unwrap();
    let mut dim2 = Table::new(
        Schema::from_pairs(&[
            ("dimId", DataType::Int),
            ("weight", DataType::Float),
            ("tag", DataType::Int),
            ("extra", DataType::Int),
        ])
        .unwrap(),
        &["dimId"],
    )
    .unwrap();
    for row in old_dim.rows() {
        let mut r = row.clone();
        r.push(Value::Int(7));
        dim2.insert(r).unwrap();
    }
    db2.create_table("dim", dim2);

    let deltas2 = random_deltas(&db2, &ops);
    let expected2 = view.recompute_fresh(&db2, &deltas2).unwrap();
    let mut v2 = view.clone();
    pipeline
        .maintain(&db2, &mut v2, &deltas2, 40)
        .expect("schema change must recompile, not fail leaf validation");
    assert!(
        pipeline.plan_compiles() > warm_compiles,
        "the schema change must key to a fresh compiled-plan entry"
    );
    assert!(v2.table().approx_same_contents(&expected2, 1e-9), "post-schema-change diverged");

    // Repartition on top of the schema change: a second new epoch, still
    // exact, still served by exactly one more compile per signature.
    pipeline.partitions = 5;
    let mut v3 = view.clone();
    pipeline.maintain(&db2, &mut v3, &deltas2, 40).unwrap();
    assert!(v3.table().approx_same_contents(&expected2, 1e-9), "post-repartition diverged");

    // And flipping back to the original database keys back to (cached or
    // fresh) plans for the old shapes — no cross-contamination.
    pipeline.partitions = 4;
    let mut v4 = view.clone();
    pipeline.maintain(&db, &mut v4, &deltas, 40).unwrap();
    assert!(v4.table().approx_same_contents(&view.recompute_fresh(&db, &deltas).unwrap(), 1e-9));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Query-shaped plans (optionally η-wrapped, optionally optimized):
    /// the streaming executor must produce exactly the legacy evaluator's
    /// relation.
    #[test]
    fn compiled_execution_matches_legacy_on_query_plans(
        n_facts in 30usize..150,
        n_dims in 4usize..16,
        variant in 0u8..8,
        hashed in 0u8..2,
        optimized in 0u8..2,
        ratio in 0.1f64..0.9,
        seed in 0u64..500,
        data_seed in 0u64..200,
    ) {
        let db = build_db(n_facts, n_dims, data_seed);
        let mut plan = plan_variant(variant);
        if hashed == 1 {
            let derived = stale_view_cleaning::relalg::derive::derive(&plan, &db).unwrap();
            let key: Vec<String> =
                derived.key_names().iter().map(|s| s.to_string()).collect();
            if !key.is_empty() {
                let key_refs: Vec<&str> = key.iter().map(|s| s.as_str()).collect();
                plan = plan.hash(&key_refs, ratio, HashSpec::with_seed(seed));
            }
        }
        if optimized == 1 {
            plan = optimize(&plan, &db).unwrap().0;
        }
        let b = Bindings::from_database(&db);
        let expected = evaluate_materializing(&plan, &b).unwrap();
        let compiled = compile(&plan, &b).unwrap();
        let got = compiled.run(&b).unwrap();
        prop_assert!(
            got.same_contents(&expected),
            "variant {} (hashed {}, optimized {}): executor diverged, {} vs {} rows",
            variant, hashed, optimized, got.len(), expected.len()
        );
        // The vectorized kernels (default) and the row-at-a-time reference
        // path must agree bit for bit, row for row, in order.
        let rowwise = compiled.run_rowwise(&b).unwrap();
        prop_assert!(
            got.rows() == rowwise.rows(),
            "variant {} (hashed {}, optimized {}): vectorized and rowwise paths diverged",
            variant, hashed, optimized
        );
        // Metered runs agree with unmetered ones, the root slot's rows_out
        // equals the result length, and both exec modes record identical
        // per-node row counts.
        let sink = compiled.metrics_sink();
        let metered = compiled
            .run_with_metrics(&b, stale_view_cleaning::relalg::exec::ExecMode::sequential(), &sink)
            .unwrap();
        prop_assert!(metered.rows() == got.rows(), "metering changed the result");
        prop_assert_eq!(sink.snapshot(0).rows_out as usize, got.len());
        let vec_rows: Vec<(u64, u64)> =
            sink.snapshots().iter().map(|m| (m.rows_in, m.rows_out)).collect();
        let row_sink = compiled.metrics_sink();
        compiled
            .run_with_metrics(
                &b,
                stale_view_cleaning::relalg::exec::ExecMode::sequential().rowwise(),
                &row_sink,
            )
            .unwrap();
        let row_rows: Vec<(u64, u64)> =
            row_sink.snapshots().iter().map(|m| (m.rows_in, m.rows_out)).collect();
        prop_assert_eq!(
            vec_rows, row_rows,
            "variant {} (hashed {}, optimized {}): per-node metric row counts differ \
             between vectorized and rowwise modes",
            variant, hashed, optimized
        );
    }

    /// Maintenance-strategy plans from svc-ivm, evaluated under maintenance
    /// bindings (stale view + base tables + delta relations): compiled
    /// execution must agree there too — this is the path `BatchPipeline`
    /// and `MaterializedView::maintain` now run through.
    #[test]
    fn compiled_execution_matches_legacy_on_maintenance_plans(
        n_facts in 40usize..120,
        n_dims in 4usize..12,
        view_kind in 0u8..3,
        ops in proptest::collection::vec((0u8..3, 0u64..1_000_000), 1..50),
        data_seed in 0u64..200,
    ) {
        let db = build_db(n_facts, n_dims, data_seed);
        let view_def = match view_kind % 3 {
            // Change-table strategy (additive aggregate).
            0 => Plan::scan("fact")
                .join(Plan::scan("dim"), JoinKind::Inner, &[("dimId", "dimId")])
                .aggregate(
                    &["dimId"],
                    vec![
                        AggSpec::count_all("n"),
                        AggSpec::new("avgx", AggFunc::Avg, col("x")),
                    ],
                ),
            // Delta-apply strategy (SPJ view).
            1 => Plan::scan("fact")
                .join(Plan::scan("dim"), JoinKind::Inner, &[("dimId", "dimId")])
                .select(col("weight").gt(lit(0.2))),
            // Recompute strategy (nested aggregate).
            _ => Plan::scan("fact")
                .aggregate(&["dimId"], vec![AggSpec::count_all("c")])
                .aggregate(&["c"], vec![AggSpec::count_all("n")]),
        };
        let view = MaterializedView::create("v", view_def, &db).unwrap();
        let deltas = random_deltas(&db, &ops);
        let (plan, _kind) = view.build_maintenance_plan(&db, &deltas).unwrap();
        let (plan, _) = optimize(&plan, &maintenance_bindings(&db, &deltas, view.table())).unwrap();

        let bindings = maintenance_bindings(&db, &deltas, view.table());
        let expected = evaluate_materializing(&plan, &bindings).unwrap();
        let compiled = compile(&plan, &bindings).unwrap();
        let got = compiled.run(&bindings).unwrap();
        prop_assert!(
            got.same_contents(&expected),
            "view kind {}: maintenance execution diverged, {} vs {} rows",
            view_kind, got.len(), expected.len()
        );
        let rowwise = compiled.run_rowwise(&bindings).unwrap();
        prop_assert!(
            got.rows() == rowwise.rows(),
            "view kind {view_kind}: vectorized and rowwise maintenance paths diverged"
        );
    }

    /// Null-heavy, type-mixed tables: typed kernels with validity masks,
    /// the `Mixed` column fallback, cross-type-rank literals, IsNull
    /// composition, and η/γ over nullable keys — vectorized execution must
    /// match the legacy evaluator (as a set) and the rowwise reference
    /// path bit for bit, row for row, in order.
    #[test]
    fn vectorized_matches_rowwise_on_null_heavy_mixed_tables(
        n_rows in 40usize..300,
        variant in 0u8..7,
        hashed in 0u8..2,
        ratio in 0.1f64..0.9,
        seed in 0u64..500,
        data_seed in 0u64..200,
    ) {
        let db = build_db_mixed(n_rows, data_seed);
        let mut plan = mixed_plan_variant(variant);
        if hashed == 1 {
            let derived = stale_view_cleaning::relalg::derive::derive(&plan, &db).unwrap();
            let key: Vec<String> =
                derived.key_names().iter().map(|s| s.to_string()).collect();
            if !key.is_empty() {
                let key_refs: Vec<&str> = key.iter().map(|s| s.as_str()).collect();
                plan = plan.hash(&key_refs, ratio, HashSpec::with_seed(seed));
            }
        }
        let b = Bindings::from_database(&db);
        let expected = evaluate_materializing(&plan, &b).unwrap();
        let compiled = compile(&plan, &b).unwrap();
        let got = compiled.run(&b).unwrap();
        prop_assert!(
            got.same_contents(&expected),
            "mixed variant {} (hashed {}): executor diverged, {} vs {} rows",
            variant, hashed, got.len(), expected.len()
        );
        let rowwise = compiled.run_rowwise(&b).unwrap();
        prop_assert!(
            got.rows() == rowwise.rows(),
            "mixed variant {variant} (hashed {hashed}): vectorized and rowwise paths diverged"
        );
    }

    /// Adversarial join-key distributions (Zipf skew, all-rows-one-key,
    /// null-heavy keys, hash-collision-prone values) through the hash-build
    /// join and set-op paths: the streaming executor must match the legacy
    /// evaluator as a set and the rowwise reference path bit for bit.
    #[test]
    fn compiled_execution_matches_legacy_on_adversarial_join_keys(
        n_facts in 30usize..200,
        skew in 0u8..4,
        variant in 0u8..8,
        optimized in 0u8..2,
        data_seed in 0u64..200,
    ) {
        let db = build_db_adversarial(n_facts, skew, data_seed);
        let mut plan = adversarial_plan_variant(variant);
        if optimized == 1 {
            plan = optimize(&plan, &db).unwrap().0;
        }
        let b = Bindings::from_database(&db);
        let expected = evaluate_materializing(&plan, &b).unwrap();
        let compiled = compile(&plan, &b).unwrap();
        let got = compiled.run(&b).unwrap();
        prop_assert!(
            got.same_contents(&expected),
            "adversarial skew {} variant {}: executor diverged, {} vs {} rows",
            skew, variant, got.len(), expected.len()
        );
        let rowwise = compiled.run_rowwise(&b).unwrap();
        prop_assert!(
            got.rows() == rowwise.rows(),
            "adversarial skew {skew} variant {variant}: vectorized and rowwise paths diverged"
        );
    }
}
