//! Property tests for the compile-once streaming executor: for randomized
//! databases, plan shapes, and delta workloads, `compile(plan).run(b)`
//! produces a table equal to the legacy materializing evaluator — on query
//! plans, on optimized plans, and on the maintenance-strategy plans that
//! `svc-ivm` compiles (evaluated under full maintenance bindings). Plus a
//! regression test that `BatchPipeline`'s compiled-plan cache invalidates
//! on repartition without changing results.

use proptest::prelude::*;

use stale_view_cleaning::cluster::minibatch::BatchPipeline;
use stale_view_cleaning::ivm::view::{maintenance_bindings, MaterializedView};
use stale_view_cleaning::relalg::aggregate::{AggFunc, AggSpec};
use stale_view_cleaning::relalg::eval::{evaluate_materializing, Bindings};
use stale_view_cleaning::relalg::exec::compile;
use stale_view_cleaning::relalg::optimizer::optimize;
use stale_view_cleaning::relalg::plan::{JoinKind, Plan};
use stale_view_cleaning::relalg::scalar::{col, lit};
use stale_view_cleaning::storage::{DataType, Database, Deltas, HashSpec, Schema, Table, Value};

fn build_db(n_facts: usize, n_dims: usize, data_seed: u64) -> Database {
    let mut s = data_seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    let mut db = Database::new();
    let mut dim = Table::new(
        Schema::from_pairs(&[
            ("dimId", DataType::Int),
            ("weight", DataType::Float),
            ("tag", DataType::Int),
        ])
        .unwrap(),
        &["dimId"],
    )
    .unwrap();
    for i in 0..n_dims as i64 {
        dim.insert(vec![
            Value::Int(i),
            Value::Float((next() % 100) as f64 / 100.0),
            Value::Int((next() % 5) as i64),
        ])
        .unwrap();
    }
    let mut fact = Table::new(
        Schema::from_pairs(&[
            ("factId", DataType::Int),
            ("dimId", DataType::Int),
            ("x", DataType::Float),
            ("y", DataType::Float),
        ])
        .unwrap(),
        &["factId"],
    )
    .unwrap();
    for i in 0..n_facts as i64 {
        fact.insert(vec![
            Value::Int(i),
            Value::Int((next() % n_dims as u64) as i64),
            Value::Float((next() % 1000) as f64 / 1000.0),
            Value::Float((next() % 500) as f64 / 100.0),
        ])
        .unwrap();
    }
    db.create_table("dim", dim);
    db.create_table("fact", fact);
    db
}

/// Plan shapes exercising every operator the executor lowers: fused σ/Π/η
/// chains, FK joins (PK-probe), non-key joins (hash build), outer joins,
/// aggregates over fused scans, and set operations.
fn plan_variant(variant: u8) -> Plan {
    match variant % 8 {
        0 => Plan::scan("fact")
            .join(Plan::scan("dim"), JoinKind::Inner, &[("dimId", "dimId")])
            .select(col("x").gt(lit(0.3)).and(col("weight").lt(lit(0.8)))),
        1 => Plan::scan("fact")
            .join(Plan::scan("dim"), JoinKind::Inner, &[("dimId", "dimId")])
            .aggregate(
                &["dimId"],
                vec![AggSpec::count_all("n"), AggSpec::new("sx", AggFunc::Sum, col("x"))],
            )
            .select(col("n").gt(lit(1i64)).and(col("dimId").lt(lit(10i64)))),
        2 => Plan::scan("fact")
            .project(vec![
                ("factId", col("factId")),
                ("dimId", col("dimId")),
                ("x2", col("x").mul(lit(2.0))),
            ])
            .select(col("x2").gt(lit(0.5))),
        3 => Plan::scan("fact")
            .select(col("x").lt(lit(0.7)))
            .union(Plan::scan("fact").select(col("x").ge(lit(0.4))))
            .select(col("dimId").lt(lit(6i64))),
        4 => Plan::scan("fact")
            .join(Plan::scan("dim"), JoinKind::Left, &[("dimId", "dimId")])
            .select(col("y").gt(lit(1.0)).and(col("weight").gt(lit(0.1)))),
        5 => Plan::scan("fact")
            .select(col("dimId").lt(lit(8i64)))
            .difference(Plan::scan("fact").select(col("x").gt(lit(0.8))))
            .select(col("y").lt(lit(4.0))),
        6 => Plan::scan("fact")
            .join(Plan::scan("dim"), JoinKind::Inner, &[("dimId", "dimId")])
            .aggregate(&["dimId", "tag"], vec![AggSpec::new("sy", AggFunc::Sum, col("y"))])
            .project(vec![("dimId", col("dimId")), ("tag", col("tag")), ("sy", col("sy"))]),
        _ => Plan::scan("fact")
            .join(Plan::scan("dim"), JoinKind::Full, &[("dimId", "dimId")])
            .select(col("x").gt(lit(0.2)).or(col("weight").gt(lit(0.5)))),
    }
}

fn random_deltas(db: &Database, ops: &[(u8, u64)]) -> Deltas {
    let mut deltas = Deltas::new();
    let n_facts = db.table("fact").unwrap().len() as i64;
    let n_dims = db.table("dim").unwrap().len() as i64;
    let mut next_fact = 1_000_000i64;
    for &(op, r) in ops {
        match op % 3 {
            0 => {
                deltas
                    .insert(
                        db,
                        "fact",
                        vec![
                            Value::Int(next_fact),
                            Value::Int((r % n_dims as u64) as i64),
                            Value::Float((r % 100) as f64 / 100.0),
                            Value::Float((r % 77) as f64 / 10.0),
                        ],
                    )
                    .unwrap();
                next_fact += 1;
            }
            1 => {
                let id = (r % n_facts as u64) as i64;
                let _ = deltas.delete(
                    db,
                    "fact",
                    &vec![Value::Int(id), Value::Null, Value::Null, Value::Null],
                );
            }
            _ => {
                let id = (r % n_facts as u64) as i64;
                let _ = deltas.update(
                    db,
                    "fact",
                    vec![
                        Value::Int(id),
                        Value::Int(((r / 7) % n_dims as u64) as i64),
                        Value::Float((r % 91) as f64 / 91.0),
                        Value::Float((r % 13) as f64),
                    ],
                );
            }
        }
    }
    deltas
}

/// Regression: `BatchPipeline` compiles each per-partition plan set at
/// most once per partitioning epoch, recompiles after a repartition, and
/// stays exact throughout — on a mixed insert/delete/update stream whose
/// chunk signatures vary across batches.
#[test]
fn batch_pipeline_cache_survives_repartitions_exactly() {
    let db = build_db(400, 12, 3);
    let view_def = Plan::scan("fact")
        .join(Plan::scan("dim"), JoinKind::Inner, &[("dimId", "dimId")])
        .aggregate(
            &["dimId"],
            vec![AggSpec::count_all("n"), AggSpec::new("avgx", AggFunc::Avg, col("x"))],
        );
    let view = MaterializedView::create("v", view_def, &db).unwrap();
    let ops: Vec<(u8, u64)> = (0..240u64).map(|i| ((i % 3) as u8, i * 131 + 7)).collect();
    let deltas = random_deltas(&db, &ops);
    let expected = view.recompute_fresh(&db, &deltas).unwrap();

    let mut pipeline = BatchPipeline::new(2);
    let mut v = view.clone();
    let run = pipeline.maintain(&db, &mut v, &deltas, 30).unwrap();
    assert!(run.batches > 3, "enough batches to exercise the cache");
    let first_epoch_compiles = pipeline.plan_compiles();
    assert!(
        first_epoch_compiles < run.batches,
        "cache must amortize: {first_epoch_compiles} compiles over {} batches",
        run.batches
    );
    assert!(v.table().approx_same_contents(&expected, 1e-9), "first epoch diverged");

    // Same stream again: every signature is already compiled.
    let mut v2 = view.clone();
    pipeline.maintain(&db, &mut v2, &deltas, 30).unwrap();
    assert_eq!(pipeline.plan_compiles(), first_epoch_compiles, "replay must not recompile");
    assert!(v2.table().approx_same_contents(&expected, 1e-9));

    // Repartition: new epoch, plans recompile, results stay exact.
    pipeline.partitions = 5;
    let mut v3 = view.clone();
    pipeline.maintain(&db, &mut v3, &deltas, 30).unwrap();
    assert!(
        pipeline.plan_compiles() > first_epoch_compiles,
        "repartition must invalidate the compiled-plan cache"
    );
    assert!(v3.table().approx_same_contents(&expected, 1e-9), "post-repartition diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Query-shaped plans (optionally η-wrapped, optionally optimized):
    /// the streaming executor must produce exactly the legacy evaluator's
    /// relation.
    #[test]
    fn compiled_execution_matches_legacy_on_query_plans(
        n_facts in 30usize..150,
        n_dims in 4usize..16,
        variant in 0u8..8,
        hashed in 0u8..2,
        optimized in 0u8..2,
        ratio in 0.1f64..0.9,
        seed in 0u64..500,
        data_seed in 0u64..200,
    ) {
        let db = build_db(n_facts, n_dims, data_seed);
        let mut plan = plan_variant(variant);
        if hashed == 1 {
            let derived = stale_view_cleaning::relalg::derive::derive(&plan, &db).unwrap();
            let key: Vec<String> =
                derived.key_names().iter().map(|s| s.to_string()).collect();
            if !key.is_empty() {
                let key_refs: Vec<&str> = key.iter().map(|s| s.as_str()).collect();
                plan = plan.hash(&key_refs, ratio, HashSpec::with_seed(seed));
            }
        }
        if optimized == 1 {
            plan = optimize(&plan, &db).unwrap().0;
        }
        let b = Bindings::from_database(&db);
        let expected = evaluate_materializing(&plan, &b).unwrap();
        let got = compile(&plan, &b).unwrap().run(&b).unwrap();
        prop_assert!(
            got.same_contents(&expected),
            "variant {} (hashed {}, optimized {}): executor diverged, {} vs {} rows",
            variant, hashed, optimized, got.len(), expected.len()
        );
    }

    /// Maintenance-strategy plans from svc-ivm, evaluated under maintenance
    /// bindings (stale view + base tables + delta relations): compiled
    /// execution must agree there too — this is the path `BatchPipeline`
    /// and `MaterializedView::maintain` now run through.
    #[test]
    fn compiled_execution_matches_legacy_on_maintenance_plans(
        n_facts in 40usize..120,
        n_dims in 4usize..12,
        view_kind in 0u8..3,
        ops in proptest::collection::vec((0u8..3, 0u64..1_000_000), 1..50),
        data_seed in 0u64..200,
    ) {
        let db = build_db(n_facts, n_dims, data_seed);
        let view_def = match view_kind % 3 {
            // Change-table strategy (additive aggregate).
            0 => Plan::scan("fact")
                .join(Plan::scan("dim"), JoinKind::Inner, &[("dimId", "dimId")])
                .aggregate(
                    &["dimId"],
                    vec![
                        AggSpec::count_all("n"),
                        AggSpec::new("avgx", AggFunc::Avg, col("x")),
                    ],
                ),
            // Delta-apply strategy (SPJ view).
            1 => Plan::scan("fact")
                .join(Plan::scan("dim"), JoinKind::Inner, &[("dimId", "dimId")])
                .select(col("weight").gt(lit(0.2))),
            // Recompute strategy (nested aggregate).
            _ => Plan::scan("fact")
                .aggregate(&["dimId"], vec![AggSpec::count_all("c")])
                .aggregate(&["c"], vec![AggSpec::count_all("n")]),
        };
        let view = MaterializedView::create("v", view_def, &db).unwrap();
        let deltas = random_deltas(&db, &ops);
        let (plan, _kind) = view.build_maintenance_plan(&db, &deltas).unwrap();
        let (plan, _) = optimize(&plan, &maintenance_bindings(&db, &deltas, view.table())).unwrap();

        let bindings = maintenance_bindings(&db, &deltas, view.table());
        let expected = evaluate_materializing(&plan, &bindings).unwrap();
        let got = compile(&plan, &bindings).unwrap().run(&bindings).unwrap();
        prop_assert!(
            got.same_contents(&expected),
            "view kind {}: maintenance execution diverged, {} vs {} rows",
            view_kind, got.len(), expected.len()
        );
    }
}
