//! Negative witnesses for the invariant verifier: every checked invariant
//! has a test here that corrupts exactly that invariant and asserts the
//! checker rejects it with a usable error. The checkers are compiled in
//! every build configuration (only the hot-path *hooks* are behind the
//! `verify` feature), so this suite runs with or without `--features
//! verify`.
//!
//! Layout mirrors `relalg::verify`: logical plan witnesses, rewrite-boundary
//! witnesses driven through the real `Optimizer`, physical node witnesses,
//! and columnar (`ColumnSet`/`SelVec`/chunk) witnesses.

use stale_view_cleaning::relalg::derive::{Derived, LeafProvider};
use stale_view_cleaning::relalg::exec::column::chunk::ChunkCols;
use stale_view_cleaning::relalg::exec::{
    ColPred, ColumnChunk, FusedOp, JoinRight, LeafRef, Node, SelVec, VecOp,
};
use stale_view_cleaning::relalg::optimizer::rules::Rule;
use stale_view_cleaning::relalg::optimizer::{OptimizeReport, Optimizer};
use stale_view_cleaning::relalg::plan::{JoinKind, Plan};
use stale_view_cleaning::relalg::scalar::{col, lit, BoundExpr};
use stale_view_cleaning::relalg::verify;
use stale_view_cleaning::storage::{
    Column, ColumnData, ColumnSet, DataType, Database, HashSpec, Result, Schema, Table, Value,
};

/// One-table database: `t(id Int key, x Float, s Str)` with a few rows.
fn db() -> Database {
    let mut t = Table::new(
        Schema::from_pairs(&[("id", DataType::Int), ("x", DataType::Float), ("s", DataType::Str)])
            .unwrap(),
        &["id"],
    )
    .unwrap();
    for i in 0..5i64 {
        t.insert(vec![
            Value::Int(i),
            Value::Float(i as f64 / 2.0),
            Value::Str(format!("r{i}").into()),
        ])
        .unwrap();
    }
    let mut db = Database::new();
    db.create_table("t", t);
    db
}

fn err_of(r: Result<Derived>) -> String {
    r.expect_err("witness must be rejected").to_string()
}

// ---------------------------------------------------------------- logical

#[test]
fn unresolvable_column_is_rejected_with_subtree() {
    let plan = Plan::scan("t").select(col("nope").gt(lit(0i64)));
    let err = err_of(verify::verify_plan(&plan, &db()));
    assert!(err.contains("nope"), "{err}");
    assert!(err.contains("in subtree"), "{err}");
}

#[test]
fn unknown_leaf_is_rejected() {
    let err = err_of(verify::verify_plan(&Plan::scan("missing"), &db()));
    assert!(err.contains("missing"), "{err}");
}

#[test]
fn setop_arity_mismatch_is_rejected() {
    let plan = Plan::scan("t").union(Plan::scan("t").project(vec![("id", col("id"))]));
    let err = err_of(verify::verify_plan(&plan, &db()));
    assert!(err.contains("arity mismatch"), "{err}");
}

#[test]
fn key_dropping_projection_is_rejected() {
    let plan = Plan::scan("t").project(vec![("x", col("x"))]);
    let err = err_of(verify::verify_plan(&plan, &db()));
    assert!(err.contains("drops primary key"), "{err}");
}

#[test]
fn eta_ratio_outside_unit_interval_is_rejected() {
    let plan = Plan::scan("t").hash(&["id"], 1.5, HashSpec::with_seed(3));
    let err = err_of(verify::verify_plan(&plan, &db()));
    assert!(err.contains("outside [0, 1]"), "{err}");
}

#[test]
fn eta_key_must_resolve() {
    let plan = Plan::scan("t").hash(&["ghost"], 0.5, HashSpec::with_seed(3));
    assert!(verify::verify_plan(&plan, &db()).is_err());
}

#[test]
fn non_bool_predicate_is_rejected() {
    let plan = Plan::scan("t").select(col("x").add(lit(1.0)));
    let err = err_of(verify::verify_plan(&plan, &db()));
    assert!(err.contains("expected Bool"), "{err}");
}

#[test]
fn innermost_node_is_blamed_not_the_root() {
    // The broken σ sits under a Π; the reported subtree must be the σ
    // (innermost), and since the located error quotes the subtree, the
    // outer projection's alias must NOT appear in it.
    let plan = Plan::scan("t")
        .select(col("s").add(lit(1i64)).gt(lit(0i64)))
        .project(vec![("id", col("id")), ("outeralias", col("x"))]);
    let err = err_of(verify::verify_plan(&plan, &db()));
    assert!(err.contains("in subtree"), "{err}");
    assert!(err.contains("Select"), "{err}");
    assert!(!err.contains("outeralias"), "blamed the root, not the node: {err}");
}

// ---------------------------------------------------- rewrite boundary

/// A deliberately broken rule: rewrites any plan into a projection of its
/// first key column only, silently changing the output schema.
struct SchemaBreaker;

impl Rule for SchemaBreaker {
    fn name(&self) -> &'static str {
        "schema-breaker"
    }

    fn apply(
        &self,
        plan: Plan,
        _leaves: &dyn LeafProvider,
        _report: &mut OptimizeReport,
    ) -> Result<(Plan, bool)> {
        Ok((plan.project(vec![("id", col("id"))]), true))
    }
}

/// A rule that claims key preservation but re-keys the plan by projecting
/// the key through an alias the key-derivation cannot track.
struct KeyBreaker;

impl Rule for KeyBreaker {
    fn name(&self) -> &'static str {
        "key-breaker"
    }

    fn apply(
        &self,
        plan: Plan,
        _leaves: &dyn LeafProvider,
        _report: &mut OptimizeReport,
    ) -> Result<(Plan, bool)> {
        // Union with a full group-by of the same table: identical schema,
        // but the Definition 2 key widens from [id] to every column.
        Ok((plan.union(Plan::scan("t").aggregate(&["id", "x", "s"], vec![])), true))
    }
}

#[test]
fn broken_rewrite_is_caught_at_the_boundary_with_rule_name_and_plan() {
    let database = db();
    let plan = Plan::scan("t").select(col("x").gt(lit(0.5)));
    let err = Optimizer::with_rules(vec![Box::new(SchemaBreaker)])
        .with_verification(true)
        .run(&plan, &database)
        .expect_err("broken rewrite must fail at the rewrite boundary")
        .to_string();
    assert!(err.contains("rewrite verifier"), "{err}");
    assert!(err.contains("schema-breaker"), "{err}");
    assert!(err.contains("changed the output schema"), "{err}");
    // The offending rewritten plan rides along in the error.
    assert!(err.contains("Project"), "{err}");
}

#[test]
fn broken_rewrite_passes_silently_when_verification_is_off() {
    // Sanity check that the catch above really happens at the boundary:
    // the same broken rule with verification disarmed "succeeds" (and
    // would surface downstream as a wrong answer).
    let database = db();
    let plan = Plan::scan("t").select(col("x").gt(lit(0.5)));
    let res = Optimizer::with_rules(vec![Box::new(SchemaBreaker)])
        .with_verification(false)
        .run(&plan, &database);
    assert!(res.is_ok(), "without the verifier the miscompile sails through");
}

#[test]
fn key_claim_change_is_caught_for_key_preserving_rules() {
    let database = db();
    let plan = Plan::scan("t");
    let err = Optimizer::with_rules(vec![Box::new(KeyBreaker)])
        .with_verification(true)
        .run(&plan, &database)
        .expect_err("key-claim change must fail")
        .to_string();
    assert!(err.contains("key-breaker"), "{err}");
}

#[test]
fn standard_rules_verify_clean_on_a_real_plan() {
    // Positive control: the real rule set under forced verification.
    let database = db();
    let plan = Plan::scan("t")
        .select(col("x").gt(lit(0.25)).and(col("id").lt(lit(4i64))))
        .project(vec![("id", col("id")), ("x2", col("x").mul(lit(2.0)))])
        .hash(&["id"], 0.5, HashSpec::with_seed(7));
    Optimizer::standard()
        .with_verification(true)
        .run(&plan, &database)
        .expect("standard rules must survive rewrite verification");
}

#[test]
fn ill_formed_input_plan_is_rejected_before_any_rule() {
    let database = db();
    let plan = Plan::scan("t").select(col("x")); // Float predicate
    let err = Optimizer::standard()
        .with_verification(true)
        .run(&plan, &database)
        .expect_err("ill-formed input must be rejected up front")
        .to_string();
    assert!(err.contains("before any rule ran"), "{err}");
}

// ---------------------------------------------------------------- physical

fn leaf() -> LeafRef {
    LeafRef {
        name: "t".into(),
        schema: Schema::from_pairs(&[
            ("id", DataType::Int),
            ("x", DataType::Float),
            ("s", DataType::Str),
        ])
        .unwrap(),
        key: vec![0],
    }
}

fn scan(ops: Vec<FusedOp>, vops: Vec<VecOp>) -> Node {
    Node::FusedScan { leaf: leaf(), ops, vops }
}

#[test]
fn leaf_key_out_of_schema_is_rejected() {
    let mut l = leaf();
    l.key = vec![9];
    let err = verify::verify_node(&Node::FusedScan { leaf: l, ops: vec![], vops: vec![] })
        .unwrap_err()
        .to_string();
    assert!(err.contains("key position 9"), "{err}");
}

#[test]
fn bound_column_out_of_arity_is_rejected() {
    let node = scan(
        vec![FusedOp::Filter(BoundExpr::Col(5))],
        vec![VecOp::Filter(ColPred::Row(BoundExpr::Col(5)))],
    );
    let err = verify::verify_node(&node).unwrap_err().to_string();
    assert!(err.contains("index 5 out of range"), "{err}");
}

#[test]
fn twin_chain_length_mismatch_is_rejected() {
    let node = scan(vec![FusedOp::Filter(BoundExpr::Col(0))], vec![]);
    let err = verify::verify_node(&node).unwrap_err().to_string();
    assert!(err.contains("1 row ops but 0 vector ops"), "{err}");
}

#[test]
fn twin_kind_mismatch_is_rejected() {
    let node = scan(
        vec![FusedOp::Filter(BoundExpr::Col(0))],
        vec![VecOp::Hash { key_idx: vec![0], ratio: 0.5, spec: HashSpec::with_seed(1) }],
    );
    let err = verify::verify_node(&node).unwrap_err().to_string();
    assert!(err.contains("twin kind mismatch"), "{err}");
}

#[test]
fn eta_twin_parameter_disagreement_is_rejected() {
    let node = scan(
        vec![FusedOp::Hash { key_idx: vec![0], ratio: 0.5, spec: HashSpec::with_seed(1) }],
        vec![VecOp::Hash { key_idx: vec![0], ratio: 0.25, spec: HashSpec::with_seed(1) }],
    );
    let err = verify::verify_node(&node).unwrap_err().to_string();
    assert!(err.contains("η twin disagreement"), "{err}");
}

#[test]
fn eta_ratio_out_of_range_is_rejected_physically() {
    let node = scan(
        vec![FusedOp::Hash { key_idx: vec![0], ratio: 2.0, spec: HashSpec::with_seed(1) }],
        vec![VecOp::Hash { key_idx: vec![0], ratio: 2.0, spec: HashSpec::with_seed(1) }],
    );
    let err = verify::verify_node(&node).unwrap_err().to_string();
    assert!(err.contains("outside [0, 1]"), "{err}");
}

#[test]
fn join_pad_width_lie_is_rejected() {
    let node = Node::Join {
        left: Box::new(scan(vec![], vec![])),
        right: JoinRight::PkProbeLeaf(leaf()),
        kind: JoinKind::Inner,
        on_idx: vec![(0, 0)],
        pad_left: 2, // leaf arity is 3
        pad_right: 3,
    };
    let err = verify::verify_node(&node).unwrap_err().to_string();
    assert!(err.contains("pad_left declares 2"), "{err}");
}

#[test]
fn join_condition_out_of_range_is_rejected() {
    let node = Node::Join {
        left: Box::new(scan(vec![], vec![])),
        right: JoinRight::PkProbeLeaf(leaf()),
        kind: JoinKind::Inner,
        on_idx: vec![(0, 7)],
        pad_left: 3,
        pad_right: 3,
    };
    let err = verify::verify_node(&node).unwrap_err().to_string();
    assert!(err.contains("out of range for arities"), "{err}");
}

#[test]
fn setop_node_arity_mismatch_is_rejected() {
    use stale_view_cleaning::relalg::derive::SetOpKind;
    let narrowed = scan(
        vec![FusedOp::Map(vec![BoundExpr::Col(0)])],
        vec![VecOp::Map(stale_view_cleaning::relalg::exec::column::kernels::compile_map(
            &[BoundExpr::Col(0)],
            &[DataType::Int],
        ))],
    );
    let node = Node::SetOp {
        kind: SetOpKind::Union,
        left: Box::new(scan(vec![], vec![])),
        right: Box::new(narrowed),
    };
    let err = verify::verify_node(&node).unwrap_err().to_string();
    assert!(err.contains("disagree on arity"), "{err}");
}

#[test]
fn root_arity_must_match_declared_output() {
    let out =
        Derived { schema: Schema::from_pairs(&[("id", DataType::Int)]).unwrap(), key: vec![0] };
    let err = verify::verify_physical(&scan(vec![], vec![]), &out).unwrap_err().to_string();
    assert!(err.contains("root produces arity 3"), "{err}");
}

#[test]
fn declared_key_out_of_arity_is_rejected() {
    let out = Derived {
        schema: Schema::from_pairs(&[
            ("id", DataType::Int),
            ("x", DataType::Float),
            ("s", DataType::Str),
        ])
        .unwrap(),
        key: vec![4],
    };
    let err = verify::verify_physical(&scan(vec![], vec![]), &out).unwrap_err().to_string();
    assert!(err.contains("key position 4"), "{err}");
}

// ---------------------------------------------------------------- columnar

fn int_col(vals: &[i64]) -> Column {
    Column { data: ColumnData::Int(vals.to_vec()), valid: None, zone: None }
}

#[test]
fn ragged_column_set_is_rejected() {
    let cs = ColumnSet { cols: vec![int_col(&[1, 2, 3]), int_col(&[1, 2])], len: 3 };
    let err = cs.check_shape().unwrap_err().to_string();
    assert!(err.contains("column 1"), "{err}");
}

#[test]
fn wrong_validity_mask_length_is_rejected() {
    let mut c = int_col(&[1, 2, 3]);
    c.valid = Some(vec![true, false]); // mask shorter than data
    let cs = ColumnSet { cols: vec![c], len: 3 };
    assert!(cs.check_shape().is_err());
}

#[test]
fn lying_zone_map_is_rejected_by_the_full_check() {
    let mut c = int_col(&[1, 2, 99]);
    c.zone = Some((0.0, 10.0)); // claims max 10, data holds 99
    let cs = ColumnSet { cols: vec![c], len: 3 };
    // The cheap shape check cannot see it; the O(rows) check must.
    assert!(cs.check_shape().is_ok());
    let err = cs.check().unwrap_err().to_string();
    assert!(err.contains("zone"), "{err}");
}

#[test]
fn zone_map_on_string_storage_is_rejected() {
    let mut c =
        Column { data: ColumnData::Str(vec!["a".into(), "b".into()]), valid: None, zone: None };
    c.zone = Some((0.0, 1.0));
    let cs = ColumnSet { cols: vec![c], len: 2 };
    assert!(cs.check_shape().is_err());
}

#[test]
fn null_masked_values_are_exempt_from_zone_bounds() {
    // Row 2 holds an out-of-zone placeholder but is masked NULL: legal.
    let c = Column {
        data: ColumnData::Int(vec![1, 2, 99]),
        valid: Some(vec![true, true, false]),
        zone: Some((1.0, 2.0)),
    };
    let cs = ColumnSet { cols: vec![c], len: 3 };
    assert!(cs.check().is_ok());
}

#[test]
fn corrupt_selvec_in_a_chunk_is_rejected() {
    let cs = ColumnSet { cols: vec![int_col(&[1, 2, 3])], len: 3 };
    let mut chunk = ColumnChunk::over(&cs, 0, 3);
    assert!(verify::check_chunk(&chunk).is_ok());
    chunk.sel = SelVec::Idx(vec![0, 5]); // out of bounds
    assert!(verify::check_chunk(&chunk).is_err());
    chunk.sel = SelVec::Idx(vec![2, 1]); // descending
    assert!(verify::check_chunk(&chunk).is_err());
    chunk.sel = SelVec::Range(3, 1); // inverted range
    assert!(verify::check_chunk(&chunk).is_err());
}

#[test]
fn owned_chunk_gets_the_full_zone_check() {
    let mut c = int_col(&[1, 2, 99]);
    c.zone = Some((0.0, 10.0));
    let owned = ColumnSet { cols: vec![c], len: 3 };
    let chunk = ColumnChunk { cols: ChunkCols::Owned(owned), sel: SelVec::Range(0, 3) };
    let err = verify::check_chunk(&chunk).unwrap_err().to_string();
    assert!(err.contains("zone"), "{err}");
}

// ------------------------------------------------------------- end to end

#[test]
fn compiled_plans_pass_physical_verification() {
    use stale_view_cleaning::relalg::exec::compile;
    let database = db();
    let plan = Plan::scan("t")
        .select(col("x").gt(lit(0.25)))
        .project(vec![("id", col("id")), ("x2", col("x").mul(lit(2.0)))])
        .hash(&["id"], 0.7, HashSpec::with_seed(5));
    let physical = compile(&plan, &database).unwrap();
    physical.verify().expect("a freshly compiled plan must verify");
}
