//! Property tests for the statistics catalog and cost-based join
//! reordering:
//!
//! * reordered plans (queries *and* maintenance/change-table plans over
//!   randomized TPC-D-style snowflake schemas) evaluate to the same
//!   relation as the builder order;
//! * incrementally-maintained statistics match statistics rebuilt from
//!   scratch over the post-delta table (exactly for counts/histograms and
//!   for insert-only sketches/bounds; conservatively under deletions);
//! * the distinct-count register sketch and histogram selectivities stay
//!   accurate on Zipf-distributed data (`svc_workloads::zipf`);
//! * σ pushed below a blocked η reaches a fixed point (no rule ping-pong).

use proptest::prelude::*;

use stale_view_cleaning::catalog::{Catalog, StatsConfig, TableStats};
use stale_view_cleaning::ivm::view::{maintenance_bindings, MaterializedView};
use stale_view_cleaning::relalg::aggregate::{AggFunc, AggSpec};
use stale_view_cleaning::relalg::eval::{evaluate, Bindings};
use stale_view_cleaning::relalg::optimizer::{optimize, optimize_with};
use stale_view_cleaning::relalg::plan::{JoinKind, Plan};
use stale_view_cleaning::relalg::scalar::{col, lit};
use stale_view_cleaning::storage::{DataType, Database, Deltas, HashSpec, Schema, Table, Value};
use stale_view_cleaning::workloads::zipf::Zipf;

/// A snowflake: fact → dim1, fact → dim2 → dim3 (TPC-D's
/// lineitem → orders → customer → nation chain in miniature).
fn snowflake_db(n_fact: usize, n_d1: usize, n_d2: usize, n_d3: usize, seed: u64) -> Database {
    let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    let mut db = Database::new();
    let mut dim3 = Table::new(
        Schema::from_pairs(&[("d3", DataType::Int), ("w3", DataType::Float)]).unwrap(),
        &["d3"],
    )
    .unwrap();
    for i in 0..n_d3 as i64 {
        dim3.insert(vec![Value::Int(i), Value::Float((next() % 50) as f64)]).unwrap();
    }
    let mut dim2 = Table::new(
        Schema::from_pairs(&[
            ("d2", DataType::Int),
            ("d3", DataType::Int),
            ("w2", DataType::Float),
        ])
        .unwrap(),
        &["d2"],
    )
    .unwrap();
    for i in 0..n_d2 as i64 {
        dim2.insert(vec![
            Value::Int(i),
            Value::Int((next() % n_d3 as u64) as i64),
            Value::Float((next() % 40) as f64),
        ])
        .unwrap();
    }
    let mut dim1 = Table::new(
        Schema::from_pairs(&[("d1", DataType::Int), ("w1", DataType::Float)]).unwrap(),
        &["d1"],
    )
    .unwrap();
    for i in 0..n_d1 as i64 {
        dim1.insert(vec![Value::Int(i), Value::Float((next() % 30) as f64)]).unwrap();
    }
    let mut fact = Table::new(
        Schema::from_pairs(&[
            ("fid", DataType::Int),
            ("d1", DataType::Int),
            ("d2", DataType::Int),
            ("x", DataType::Float),
        ])
        .unwrap(),
        &["fid"],
    )
    .unwrap();
    for i in 0..n_fact as i64 {
        fact.insert(vec![
            Value::Int(i),
            Value::Int((next() % n_d1 as u64) as i64),
            Value::Int((next() % n_d2 as u64) as i64),
            Value::Float((next() % 100) as f64),
        ])
        .unwrap();
    }
    db.create_table("dim3", dim3);
    db.create_table("dim2", dim2);
    db.create_table("dim1", dim1);
    db.create_table("fact", fact);
    db
}

/// The three-join region written in several builder orders (all compute
/// the same relation), with a selective filter whose best position depends
/// on the order.
fn snowflake_plan(order: u8, w3_cut: i64, x_cut: i64) -> Plan {
    let filter = col("w3").lt(lit(w3_cut as f64)).and(col("x").ge(lit(x_cut as f64)));
    let plan = match order % 4 {
        0 => Plan::scan("fact")
            .join(Plan::scan("dim1"), JoinKind::Inner, &[("d1", "d1")])
            .join(Plan::scan("dim2"), JoinKind::Inner, &[("d2", "d2")])
            .join(Plan::scan("dim3"), JoinKind::Inner, &[("d3", "d3")]),
        1 => Plan::scan("fact")
            .join(Plan::scan("dim2"), JoinKind::Inner, &[("d2", "d2")])
            .join(Plan::scan("dim3"), JoinKind::Inner, &[("d3", "d3")])
            .join(Plan::scan("dim1"), JoinKind::Inner, &[("d1", "d1")]),
        2 => Plan::scan("dim2")
            .join(Plan::scan("dim3"), JoinKind::Inner, &[("d3", "d3")])
            .join(Plan::scan("fact"), JoinKind::Inner, &[("d2", "d2")])
            .join(Plan::scan("dim1"), JoinKind::Inner, &[("d1", "d1")]),
        _ => Plan::scan("dim1")
            .join(
                Plan::scan("fact").join(Plan::scan("dim2"), JoinKind::Inner, &[("d2", "d2")]),
                JoinKind::Inner,
                &[("d1", "d1")],
            )
            .join(Plan::scan("dim3"), JoinKind::Inner, &[("d3", "d3")]),
    };
    plan.select(filter)
}

/// Same relation: same schema and same row multiset. Deliberately ignores
/// the derived primary key — Definition 2's foreign-key reduction depends
/// on join orientation, so a reordered (but equal) relation may carry a
/// different, equally valid key.
fn same_relation(a: &Table, b: &Table) -> bool {
    if a.schema() != b.schema() || a.len() != b.len() {
        return false;
    }
    let mut ra = a.rows().to_vec();
    let mut rb = b.rows().to_vec();
    ra.sort();
    rb.sort();
    ra == rb
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Reordering preserves the computed relation exactly on randomized
    /// snowflake join plans, whatever order the builder emitted.
    #[test]
    fn reordered_query_plans_evaluate_identically(
        n_fact in 200usize..600,
        n_d1 in 4usize..20,
        n_d2 in 8usize..40,
        n_d3 in 3usize..10,
        order in 0u8..4,
        w3_cut in 5i64..45,
        x_cut in 0i64..60,
        seed in 0u64..1_000,
        agg in 0u8..2,
    ) {
        let db = snowflake_db(n_fact, n_d1, n_d2, n_d3, seed);
        let mut plan = snowflake_plan(order, w3_cut, x_cut);
        if agg == 1 {
            plan = plan.aggregate(
                &["d1"],
                vec![AggSpec::count_all("n"), AggSpec::new("sx", AggFunc::Sum, col("x"))],
            );
        }
        let cat = Catalog::build(&db);
        let b = Bindings::from_database(&db);
        let (baseline, _) = optimize(&plan, &db).unwrap();
        let expected = evaluate(&baseline, &b).unwrap();
        let (reordered, _) = optimize_with(&plan, &db, &cat.estimator()).unwrap();
        let got = evaluate(&reordered, &b).unwrap();
        // Aggregated sums may differ in float accumulation order only;
        // non-aggregated outputs carry identical rows (possibly under a
        // different — equally valid — derived key).
        let equal = if agg == 1 {
            got.approx_same_contents(&expected, 1e-9)
        } else {
            same_relation(&got, &expected)
        };
        prop_assert!(
            equal,
            "order {order}, agg {agg}: reordering changed the result ({} vs {} rows)",
            got.len(),
            expected.len()
        );
    }

    /// Maintenance plans (change-table / delta-apply / recompute) evaluate
    /// identically under reordering, with the maintenance bindings.
    #[test]
    fn reordered_maintenance_plans_evaluate_identically(
        n_fact in 200usize..500,
        order in 0u8..4,
        ops in proptest::collection::vec((0u8..3, 0u64..1_000_000), 5..40),
        seed in 0u64..1_000,
    ) {
        let db = snowflake_db(n_fact, 8, 16, 5, seed);
        let def = snowflake_plan(order, 40, 5).aggregate(
            &["d1"],
            vec![AggSpec::count_all("n"), AggSpec::new("avgx", AggFunc::Avg, col("x"))],
        );
        let view = MaterializedView::create("v", def, &db).unwrap();
        let mut deltas = Deltas::new();
        let mut next_fid = 10_000_000i64;
        for &(op, r) in &ops {
            match op % 3 {
                0 => {
                    deltas.insert(&db, "fact", vec![
                        Value::Int(next_fid),
                        Value::Int((r % 8) as i64),
                        Value::Int((r % 16) as i64),
                        Value::Float((r % 90) as f64),
                    ]).unwrap();
                    next_fid += 1;
                }
                1 => {
                    let _ = deltas.delete(&db, "fact", &vec![
                        Value::Int((r % n_fact as u64) as i64),
                        Value::Null, Value::Null, Value::Null,
                    ]);
                }
                _ => {
                    let _ = deltas.update(&db, "fact", vec![
                        Value::Int((r % n_fact as u64) as i64),
                        Value::Int(((r / 3) % 8) as i64),
                        Value::Int(((r / 7) % 16) as i64),
                        Value::Float((r % 71) as f64),
                    ]);
                }
            }
        }
        let (plan, _kind) = view.build_maintenance_plan(&db, &deltas).unwrap();
        let bindings = maintenance_bindings(&db, &deltas, view.table());
        let expected = evaluate(&plan, &bindings).unwrap();
        // The catalog covers base tables; `__stale` / `__ins.*` leaves fall
        // back to estimator defaults — reordering must stay sound anyway.
        let cat = Catalog::build(&db);
        let (reordered, _) = optimize_with(&plan, &bindings, &cat.estimator()).unwrap();
        let got = evaluate(&reordered, &bindings).unwrap();
        prop_assert!(
            got.approx_same_contents(&expected, 1e-9),
            "order {order}: reordered maintenance plan diverged ({} vs {} rows)",
            got.len(),
            expected.len()
        );
    }

    /// Incremental stats match a same-shape rebuild over the post-delta
    /// table: exactly for counts and histograms; exactly for sketches and
    /// min/max under insert-only deltas; conservatively otherwise.
    #[test]
    fn incremental_stats_match_rebuild(
        n in 100usize..400,
        inserts in 0usize..150,
        deletes in 0usize..80,
        seed in 0u64..1_000,
    ) {
        let db = snowflake_db(n, 6, 12, 4, seed);
        let mut cat = Catalog::build(&db);
        cat.rebuild_threshold = f64::INFINITY; // keep the incremental path under test
        let mut deltas = Deltas::new();
        for i in 0..inserts as i64 {
            deltas.insert(&db, "fact", vec![
                Value::Int(1_000_000 + i),
                Value::Int(i % 6),
                Value::Int(i % 12),
                Value::Float(((i * 13) % 120) as f64),
            ]).unwrap();
        }
        for i in 0..deletes as i64 {
            let _ = deltas.delete(&db, "fact", &vec![
                Value::Int((i * 7) % n as i64),
                Value::Null, Value::Null, Value::Null,
            ]);
        }
        let mut db2 = db.clone();
        let had_deletes = deltas.get("fact").is_some_and(|s| !s.deletions.is_empty());
        cat.commit_deltas(&mut db2, &mut deltas).unwrap();

        let incr = cat.stats("fact").unwrap();
        let rebuilt = incr.rebuilt_like(db2.table("fact").unwrap());
        prop_assert_eq!(incr.rows, rebuilt.rows, "row counts are exact");
        for (a, b) in incr.cols.iter().zip(&rebuilt.cols) {
            prop_assert_eq!(a.nulls, b.nulls);
            prop_assert_eq!(a.histogram.clone(), b.histogram.clone(), "histogram cells are exact");
            if had_deletes {
                for (ra, rb) in a.sketch.registers().iter().zip(b.sketch.registers()) {
                    prop_assert!(ra >= rb, "sketch registers are an upper bound");
                }
                match (a.min, b.min) {
                    (Some(am), Some(bm)) => prop_assert!(am <= bm),
                    (None, Some(_)) => prop_assert!(false, "lost a min bound"),
                    _ => {}
                }
                match (a.max, b.max) {
                    (Some(am), Some(bm)) => prop_assert!(am >= bm),
                    (None, Some(_)) => prop_assert!(false, "lost a max bound"),
                    _ => {}
                }
            } else {
                prop_assert_eq!(&a.sketch, &b.sketch, "insert-only sketches are exact");
                prop_assert_eq!(a.min, b.min);
                prop_assert_eq!(a.max, b.max);
            }
        }
    }

    /// σ above/below a blocked η: one optimize() reaches the canonical
    /// fixed point — running it again changes nothing and results agree.
    #[test]
    fn sigma_eta_canonical_form_is_a_fixed_point(
        n_fact in 100usize..300,
        order in 0u8..4,
        ratio in 0.1f64..0.9,
        hash_seed in 0u64..500,
        seed in 0u64..500,
        below in 0u8..2,
    ) {
        let db = snowflake_db(n_fact, 6, 12, 4, seed);
        let joins = snowflake_plan(order, 40, 0);
        // η on the fact key above the join region, with the σ written
        // above or below it.
        let sigma = col("x").lt(lit(55.0));
        let plan = if below == 1 {
            joins.select(sigma).hash(&["fid"], ratio, HashSpec::with_seed(hash_seed))
        } else {
            joins.hash(&["fid"], ratio, HashSpec::with_seed(hash_seed)).select(sigma)
        };
        let b = Bindings::from_database(&db);
        let expected = evaluate(&plan, &b).unwrap();
        let (once, r1) = optimize(&plan, &db).unwrap();
        let got = evaluate(&once, &b).unwrap();
        prop_assert!(got.same_contents(&expected), "canonicalization changed the sample");
        prop_assert!(r1.passes <= 5, "slow fixed point: {} passes", r1.passes);
        let (twice, r2) = optimize(&once, &db).unwrap();
        prop_assert_eq!(&once, &twice, "re-optimizing must be a no-op");
        prop_assert!(r2.passes <= 2, "fixed point must confirm immediately: {:?}", r2);
    }
}

/// Register-sketch accuracy on Zipf-distributed values: heavy duplication
/// must not bias the distinct estimate.
#[test]
fn sketch_accuracy_on_zipf_data() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(99);
    for &(domain, z) in &[(500usize, 1.0f64), (1_000, 2.0), (2_000, 1.5)] {
        let zipf = Zipf::new(domain, z);
        let mut sketch = stale_view_cleaning::catalog::DistinctSketch::default();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..30_000 {
            let v = zipf.sample(&mut rng) as i64;
            sketch.insert(&Value::Int(v));
            seen.insert(v);
        }
        let est = sketch.estimate();
        let truth = seen.len() as f64;
        let rel = (est - truth).abs() / truth;
        assert!(rel < 0.12, "domain {domain} z {z}: estimate {est} vs true {truth} ({rel:.3})");
    }
}

/// Histogram range selectivity on Zipf data: the estimated CDF must track
/// the true one within the resolution of the (equi-width) buckets.
#[test]
fn histogram_selectivity_on_zipf_data() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(7);
    for &z in &[0.5f64, 1.0, 2.0] {
        let zipf = Zipf::new(1_000, z);
        let values: Vec<f64> = (0..20_000).map(|_| zipf.sample(&mut rng) as f64).collect();
        let mut t = Table::new(
            Schema::from_pairs(&[("id", DataType::Int), ("v", DataType::Float)]).unwrap(),
            &["id"],
        )
        .unwrap();
        for (i, &v) in values.iter().enumerate() {
            t.insert(vec![Value::Int(i as i64), Value::Float(v)]).unwrap();
        }
        let stats = TableStats::build(&t, &StatsConfig::default());
        let hist = stats.cols[1].histogram.as_ref().expect("numeric column gets a histogram");
        // Worst-case interpolation error within one bucket is that
        // bucket's mass; Zipf concentrates mass in the head bucket.
        let (lo, hi) = hist.range();
        let width = (hi - lo) / 64.0;
        for &q in &[0.1f64, 0.25, 0.5, 0.75, 0.9] {
            let x = lo + q * (hi - lo);
            let est = hist.fraction_le(x);
            let truth = values.iter().filter(|&&v| v <= x).count() as f64 / values.len() as f64;
            let head_mass =
                values.iter().filter(|&&v| v < lo + width).count() as f64 / values.len() as f64;
            let tol = (head_mass + 0.02).min(0.25);
            assert!(
                (est - truth).abs() <= tol,
                "z {z}, q {q}: estimated {est:.3} vs true {truth:.3} (tol {tol:.3})"
            );
        }
        // And the selectivity the estimator derives from it matches on a
        // concrete predicate.
        let x = lo + 0.5 * (hi - lo);
        let est_rows = stats.estimate_filter_rows(&col("v").le(lit(x)));
        let truth = values.iter().filter(|&&v| v <= x).count() as f64;
        assert!(
            (est_rows - truth).abs() / values.len() as f64 <= 0.25,
            "z {z}: estimated {est_rows:.0} rows vs true {truth:.0}"
        );
    }
}
