//! Property tests for the rule-driven optimizer: for randomized databases,
//! plan shapes, and delta workloads, `evaluate(optimize(plan))` produces a
//! table equal to `evaluate(plan)` — including the maintenance-strategy
//! plans that `svc-ivm` compiles, evaluated under full maintenance
//! bindings (stale view + base tables + delta relations).

use proptest::prelude::*;

use stale_view_cleaning::ivm::view::{maintenance_bindings, MaterializedView};
use stale_view_cleaning::relalg::aggregate::{AggFunc, AggSpec};
use stale_view_cleaning::relalg::eval::{evaluate, Bindings};
use stale_view_cleaning::relalg::optimizer::optimize;
use stale_view_cleaning::relalg::plan::{JoinKind, Plan};
use stale_view_cleaning::relalg::scalar::{col, lit};
use stale_view_cleaning::storage::{DataType, Database, Deltas, HashSpec, Schema, Table, Value};

fn build_db(n_facts: usize, n_dims: usize, data_seed: u64) -> Database {
    let mut s = data_seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    let mut db = Database::new();
    let mut dim = Table::new(
        Schema::from_pairs(&[
            ("dimId", DataType::Int),
            ("weight", DataType::Float),
            ("tag", DataType::Int),
        ])
        .unwrap(),
        &["dimId"],
    )
    .unwrap();
    for i in 0..n_dims as i64 {
        dim.insert(vec![
            Value::Int(i),
            Value::Float((next() % 100) as f64 / 100.0),
            Value::Int((next() % 5) as i64),
        ])
        .unwrap();
    }
    let mut fact = Table::new(
        Schema::from_pairs(&[
            ("factId", DataType::Int),
            ("dimId", DataType::Int),
            ("x", DataType::Float),
            ("y", DataType::Float),
        ])
        .unwrap(),
        &["factId"],
    )
    .unwrap();
    for i in 0..n_facts as i64 {
        fact.insert(vec![
            Value::Int(i),
            Value::Int((next() % n_dims as u64) as i64),
            Value::Float((next() % 1000) as f64 / 1000.0),
            Value::Float((next() % 500) as f64 / 100.0),
        ])
        .unwrap();
    }
    db.create_table("dim", dim);
    db.create_table("fact", fact);
    db
}

/// Plan shapes exercising every operator the rules rewrite: σ over ⋈, σ
/// over γ (group filter + HAVING), Π substitution, set operations, outer
/// joins (which block predicate pushdown per side), and η on top.
fn plan_variant(variant: u8) -> Plan {
    match variant % 8 {
        0 => Plan::scan("fact")
            .join(Plan::scan("dim"), JoinKind::Inner, &[("dimId", "dimId")])
            .select(col("x").gt(lit(0.3)).and(col("weight").lt(lit(0.8)))),
        1 => Plan::scan("fact")
            .join(Plan::scan("dim"), JoinKind::Inner, &[("dimId", "dimId")])
            .aggregate(
                &["dimId"],
                vec![AggSpec::count_all("n"), AggSpec::new("sx", AggFunc::Sum, col("x"))],
            )
            .select(col("n").gt(lit(1i64)).and(col("dimId").lt(lit(10i64)))),
        2 => Plan::scan("fact")
            .project(vec![
                ("factId", col("factId")),
                ("dimId", col("dimId")),
                ("x2", col("x").mul(lit(2.0))),
            ])
            .select(col("x2").gt(lit(0.5))),
        3 => Plan::scan("fact")
            .select(col("x").lt(lit(0.7)))
            .union(Plan::scan("fact").select(col("x").ge(lit(0.4))))
            .select(col("dimId").lt(lit(6i64))),
        4 => Plan::scan("fact")
            .join(Plan::scan("dim"), JoinKind::Left, &[("dimId", "dimId")])
            .select(col("y").gt(lit(1.0)).and(col("weight").gt(lit(0.1)))),
        5 => Plan::scan("fact")
            .select(col("dimId").lt(lit(8i64)))
            .difference(Plan::scan("fact").select(col("x").gt(lit(0.8))))
            .select(col("y").lt(lit(4.0))),
        6 => Plan::scan("fact")
            .join(Plan::scan("dim"), JoinKind::Inner, &[("dimId", "dimId")])
            .aggregate(&["dimId", "tag"], vec![AggSpec::new("sy", AggFunc::Sum, col("y"))])
            .project(vec![("dimId", col("dimId")), ("tag", col("tag")), ("sy", col("sy"))]),
        _ => Plan::scan("fact")
            .join(Plan::scan("dim"), JoinKind::Full, &[("dimId", "dimId")])
            .select(col("x").gt(lit(0.2)).or(col("weight").gt(lit(0.5)))),
    }
}

fn random_deltas(db: &Database, ops: &[(u8, u64)]) -> Deltas {
    let mut deltas = Deltas::new();
    let n_facts = db.table("fact").unwrap().len() as i64;
    let n_dims = db.table("dim").unwrap().len() as i64;
    let mut next_fact = 1_000_000i64;
    for &(op, r) in ops {
        match op % 3 {
            0 => {
                deltas
                    .insert(
                        db,
                        "fact",
                        vec![
                            Value::Int(next_fact),
                            Value::Int((r % n_dims as u64) as i64),
                            Value::Float((r % 100) as f64 / 100.0),
                            Value::Float((r % 77) as f64 / 10.0),
                        ],
                    )
                    .unwrap();
                next_fact += 1;
            }
            1 => {
                let id = (r % n_facts as u64) as i64;
                let _ = deltas.delete(
                    db,
                    "fact",
                    &vec![Value::Int(id), Value::Null, Value::Null, Value::Null],
                );
            }
            _ => {
                let id = (r % n_facts as u64) as i64;
                let _ = deltas.update(
                    db,
                    "fact",
                    vec![
                        Value::Int(id),
                        Value::Int(((r / 7) % n_dims as u64) as i64),
                        Value::Float((r % 91) as f64 / 91.0),
                        Value::Float((r % 13) as f64),
                    ],
                );
            }
        }
    }
    deltas
}

/// Acceptance guard: on every maintenance strategy the full rule set pushes
/// η at least as deep as the legacy standalone pass (`sampling::push_down`,
/// now a thin wrapper over the η rule alone) — no blocker appears and no
/// sampled leaf disappears when the other rules run alongside.
#[test]
fn eta_depth_no_regression_on_maintenance_strategies() {
    use stale_view_cleaning::sampling::push_down;

    let db = build_db(120, 10, 7);
    let view_defs = [
        // Change-table strategy.
        Plan::scan("fact")
            .join(Plan::scan("dim"), JoinKind::Inner, &[("dimId", "dimId")])
            .aggregate(
                &["dimId"],
                vec![AggSpec::count_all("n"), AggSpec::new("avgx", AggFunc::Avg, col("x"))],
            ),
        // Delta-apply strategy.
        Plan::scan("fact")
            .join(Plan::scan("dim"), JoinKind::Inner, &[("dimId", "dimId")])
            .select(col("weight").gt(lit(0.2))),
        // Recompute strategy (nested aggregate, the V21 blocker shape).
        Plan::scan("fact")
            .aggregate(&["dimId"], vec![AggSpec::count_all("c")])
            .aggregate(&["c"], vec![AggSpec::count_all("n")]),
    ];
    let ops: Vec<(u8, u64)> = (0..40u64).map(|i| ((i % 3) as u8, i * 131 + 7)).collect();

    for (i, def) in view_defs.into_iter().enumerate() {
        let view = MaterializedView::create("v", def, &db).unwrap();
        let deltas = random_deltas(&db, &ops);
        let (mplan, kind) = view.build_maintenance_plan(&db, &deltas).unwrap();
        let key_names = view.key_names();
        let key_refs: Vec<&str> = key_names.iter().map(|s| s.as_str()).collect();
        let hashed = mplan.hash(&key_refs, 0.25, HashSpec::with_seed(11));

        let bindings = maintenance_bindings(&db, &deltas, view.table());
        let (_, legacy) = push_down(&hashed, &bindings).unwrap();
        let (optimized, full) = optimize(&hashed, &bindings).unwrap();

        assert!(
            full.eta.blockers.len() <= legacy.blockers.len(),
            "strategy {i} ({kind:?}): full optimizer added η blockers: {:?} vs {:?}",
            full.eta.blockers,
            legacy.blockers
        );
        assert!(
            full.eta.sampled_leaves.len() >= legacy.sampled_leaves.len(),
            "strategy {i} ({kind:?}): full optimizer lost sampled leaves: {:?} vs {:?}",
            full.eta.sampled_leaves,
            legacy.sampled_leaves
        );

        // And the combined rewrite still evaluates to the identical sample.
        let expected = evaluate(&hashed, &bindings).unwrap();
        let got = evaluate(&optimized, &bindings).unwrap();
        assert!(got.same_contents(&expected), "strategy {i} ({kind:?}) diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// η∘η with one shared (key, spec) composes to η_min — equivalence of
    /// the composed rewrite for arbitrary ratio pairs, plan shapes, and
    /// stacking orders.
    #[test]
    fn stacked_hashes_compose_equivalently(
        n_facts in 30usize..120,
        n_dims in 4usize..12,
        variant in 0u8..8,
        r1 in 0.05f64..0.95,
        r2 in 0.05f64..0.95,
        seed in 0u64..500,
        data_seed in 0u64..200,
    ) {
        let db = build_db(n_facts, n_dims, data_seed);
        let base = plan_variant(variant);
        let derived = stale_view_cleaning::relalg::derive::derive(&base, &db).unwrap();
        let key: Vec<String> = derived.key_names().iter().map(|s| s.to_string()).collect();
        prop_assert!(!key.is_empty(), "every plan variant derives a non-empty key");
        let key_refs: Vec<&str> = key.iter().map(|s| s.as_str()).collect();
        let spec = HashSpec::with_seed(seed);
        let plan = base.hash(&key_refs, r1, spec).hash(&key_refs, r2, spec);

        let b = Bindings::from_database(&db);
        let expected = evaluate(&plan, &b).unwrap();
        let (optimized, _) = optimize(&plan, &db).unwrap();
        let got = evaluate(&optimized, &b).unwrap();
        prop_assert!(
            got.same_contents(&expected),
            "variant {variant}: η∘η (m1={r1:.3}, m2={r2:.3}) composition diverged, {} vs {} rows",
            got.len(),
            expected.len()
        );
        // The composed sample is exactly the tighter single hash.
        let single = plan_variant(variant).hash(&key_refs, r1.min(r2), spec);
        let single_eval = evaluate(&single, &b).unwrap();
        prop_assert!(
            got.same_contents(&single_eval),
            "variant {variant}: composed sample differs from η_min"
        );
    }

    /// Definition-shaped plans (optionally η-wrapped): the full rule set
    /// must preserve the evaluated relation exactly.
    #[test]
    fn optimized_plans_evaluate_identically(
        n_facts in 30usize..150,
        n_dims in 4usize..16,
        variant in 0u8..8,
        hashed in 0u8..2,
        ratio in 0.1f64..0.9,
        seed in 0u64..500,
        data_seed in 0u64..200,
    ) {
        let db = build_db(n_facts, n_dims, data_seed);
        let mut plan = plan_variant(variant);
        if hashed == 1 {
            // Hash on the plan's own derived key so η is always legal.
            let derived = stale_view_cleaning::relalg::derive::derive(&plan, &db).unwrap();
            let key: Vec<String> =
                derived.key_names().iter().map(|s| s.to_string()).collect();
            if !key.is_empty() {
                let key_refs: Vec<&str> = key.iter().map(|s| s.as_str()).collect();
                plan = plan.hash(&key_refs, ratio, HashSpec::with_seed(seed));
            }
        }
        let b = Bindings::from_database(&db);
        let expected = evaluate(&plan, &b).unwrap();
        let (optimized, report) = optimize(&plan, &db).unwrap();
        let got = evaluate(&optimized, &b).unwrap();
        prop_assert!(
            got.same_contents(&expected),
            "variant {} (hashed {}): optimizer changed the result, {} vs {} rows after {} passes",
            variant, hashed, got.len(), expected.len(), report.passes
        );
    }

    /// Maintenance-strategy plans from svc-ivm, evaluated under maintenance
    /// bindings (stale view + deltas): optimization must commute with
    /// evaluation there too.
    #[test]
    fn optimized_maintenance_plans_evaluate_identically(
        n_facts in 40usize..120,
        n_dims in 4usize..12,
        view_kind in 0u8..3,
        ops in proptest::collection::vec((0u8..3, 0u64..1_000_000), 1..50),
        data_seed in 0u64..200,
    ) {
        let db = build_db(n_facts, n_dims, data_seed);
        let view_def = match view_kind % 3 {
            // Change-table strategy (additive aggregate).
            0 => Plan::scan("fact")
                .join(Plan::scan("dim"), JoinKind::Inner, &[("dimId", "dimId")])
                .aggregate(
                    &["dimId"],
                    vec![
                        AggSpec::count_all("n"),
                        AggSpec::new("avgx", AggFunc::Avg, col("x")),
                    ],
                ),
            // Delta-apply strategy (SPJ view).
            1 => Plan::scan("fact")
                .join(Plan::scan("dim"), JoinKind::Inner, &[("dimId", "dimId")])
                .select(col("weight").gt(lit(0.2))),
            // Recompute strategy (nested aggregate).
            _ => Plan::scan("fact")
                .aggregate(&["dimId"], vec![AggSpec::count_all("c")])
                .aggregate(&["c"], vec![AggSpec::count_all("n")]),
        };
        let view = MaterializedView::create("v", view_def, &db).unwrap();
        let deltas = random_deltas(&db, &ops);
        let (plan, _kind) = view.build_maintenance_plan(&db, &deltas).unwrap();

        let bindings = maintenance_bindings(&db, &deltas, view.table());
        let expected = evaluate(&plan, &bindings).unwrap();

        // The optimizer needs the maintenance catalog (stale + delta leaves)
        // to derive schemas; the bindings provide exactly that.
        let (optimized, report) = optimize(&plan, &bindings).unwrap();
        let got = evaluate(&optimized, &bindings).unwrap();
        prop_assert!(
            got.same_contents(&expected),
            "view kind {}: optimizer changed maintenance result, {} vs {} rows after {} passes",
            view_kind, got.len(), expected.len(), report.passes
        );
    }
}
