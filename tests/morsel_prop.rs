//! The parallel-vs-sequential equivalence harness for morsel-parallel
//! execution: for randomized databases, plan shapes (reusing the
//! `exec_prop.rs` generators), and signed maintenance workloads,
//! `PhysicalPlan::run_parallel` across a matrix of worker counts {1, 2, 4}
//! and morsel sizes {1, 7, 64, whole-table} must agree with the sequential
//! `run()` **row for row and in output order** — exactly on every
//! non-float column, and up to float-sum rounding on aggregate columns
//! (per-morsel partial sums combine at the γ barrier). Independent of the
//! rounding caveat, the parallel result must be *bit-identical across
//! worker counts* for a fixed morsel size: the morsel decomposition and
//! the barrier merge order are functions of the morsel size only, never of
//! scheduler interleaving.

use proptest::prelude::*;

mod generators;
use generators::{build_db, build_db_mixed, mixed_plan_variant, plan_variant, random_deltas};

use stale_view_cleaning::cluster::executor::WorkerPool;
use stale_view_cleaning::ivm::view::{maintenance_bindings, MaterializedView};
use stale_view_cleaning::relalg::aggregate::{AggFunc, AggSpec};
use stale_view_cleaning::relalg::eval::Bindings;
use stale_view_cleaning::relalg::exec::{compile, MorselScheduler, SequentialScheduler};
use stale_view_cleaning::relalg::optimizer::optimize;
use stale_view_cleaning::relalg::plan::{JoinKind, Plan};
use stale_view_cleaning::relalg::scalar::{col, lit};
use stale_view_cleaning::storage::{HashSpec, Table, Value};

/// The morsel-size axis of the matrix (whole-table = one morsel covers any
/// input, so every node takes its sequential inline path).
const MORSELS: [usize; 4] = [1, 7, 64, usize::MAX];

/// Row-for-row, in-order comparison with float tolerance on the values —
/// the "row-set identical including deterministic output ordering at the
/// keyed root" check. `Table::same_contents` is order-insensitive; this is
/// deliberately stricter.
fn approx_same_rows_in_order(a: &Table, b: &Table, eps: f64) -> bool {
    fn value_close(x: &Value, y: &Value, eps: f64) -> bool {
        match (x.as_f64(), y.as_f64()) {
            (Some(p), Some(q)) => {
                let scale = p.abs().max(q.abs()).max(1.0);
                (p - q).abs() <= eps * scale
            }
            _ => x == y,
        }
    }
    a.schema() == b.schema()
        && a.key() == b.key()
        && a.len() == b.len()
        && a.rows()
            .iter()
            .zip(b.rows())
            .all(|(ra, rb)| ra.iter().zip(rb).all(|(x, y)| value_close(x, y, eps)))
}

/// Assert the full matrix for one compiled plan under one binding set:
/// sequential `run()` as the oracle, `run_parallel` across schedulers ×
/// morsel sizes, bit-identical across schedulers for a fixed morsel size.
/// The row-at-a-time reference path rides along on both axes: sequential
/// `run_rowwise` must be bit-identical to `run`, and the parallel rowwise
/// mode bit-identical to the parallel vectorized anchor per morsel size.
fn assert_matrix(
    compiled: &stale_view_cleaning::relalg::exec::PhysicalPlan,
    bindings: &Bindings<'_>,
    pools: &[WorkerPool],
    label: &str,
) {
    use stale_view_cleaning::relalg::exec::ExecMode;
    let sequential = compiled.run(bindings).unwrap();
    let rowwise = compiled.run_rowwise(bindings).unwrap();
    assert!(
        rowwise.rows() == sequential.rows() && rowwise.schema() == sequential.schema(),
        "{label}: sequential vectorized and rowwise paths diverged"
    );

    // Per-node metric row counts obey the same contract as the rows
    // themselves: the row-shaped fields (in/out, build/probe, groups) are
    // functions of plan + inputs only — identical across exec modes,
    // schedulers, and morsel sizes. (Wall times, morsel and chunk counts
    // legitimately vary and are excluded.)
    let metric_rows = |mode: ExecMode<'_>| -> Vec<[u64; 5]> {
        let sink = compiled.metrics_sink();
        compiled.run_with_metrics(bindings, mode, &sink).unwrap();
        sink.snapshots()
            .iter()
            .map(|m| [m.rows_in, m.rows_out, m.build_rows, m.probe_rows, m.groups])
            .collect()
    };
    let node_rows = metric_rows(ExecMode::sequential());
    assert_eq!(
        node_rows,
        metric_rows(ExecMode::sequential().rowwise()),
        "{label}: rowwise mode changed per-node metric row counts"
    );
    assert_eq!(
        node_rows,
        metric_rows(ExecMode::morsel(&SequentialScheduler, 7)),
        "{label}: morsel decomposition changed per-node metric row counts"
    );
    for pool in pools {
        assert_eq!(
            node_rows,
            metric_rows(ExecMode::morsel(pool, 7)),
            "{label}: {} workers changed per-node metric row counts",
            pool.workers()
        );
    }
    for &morsel in &MORSELS {
        // The inline scheduler anchors the morsel decomposition; pools of
        // every worker count must reproduce it bit for bit.
        let anchor = compiled.run_parallel(bindings, &SequentialScheduler, morsel).unwrap();
        let anchor_rw = compiled
            .run_with(bindings, ExecMode::morsel(&SequentialScheduler, morsel).rowwise())
            .unwrap();
        assert!(
            anchor_rw.rows() == anchor.rows(),
            "{label}: morsel {morsel} parallel rowwise diverged from parallel vectorized"
        );
        // The partition knob shards hash-join builds and set-op dedup by
        // key hash; equal keys land in the same partition in the same
        // order, so it must never show up in the result. (The dedicated
        // partition-count × worker-count matrix lives in
        // `tests/partition_prop.rs`.)
        let anchor_p = compiled
            .run_with(bindings, ExecMode::morsel(&SequentialScheduler, morsel).partitions(4))
            .unwrap();
        assert!(
            anchor_p.rows() == anchor.rows(),
            "{label}: morsel {morsel} with 4 partitions diverged from the unpartitioned build"
        );
        assert!(
            approx_same_rows_in_order(&anchor, &sequential, 1e-9),
            "{label}: morsel {morsel} diverged from sequential in rows or order \
             ({} vs {} rows)",
            anchor.len(),
            sequential.len()
        );
        if morsel == usize::MAX {
            // One morsel covers everything: the result must be *exactly*
            // the sequential one, float bits included.
            assert!(
                anchor.rows() == sequential.rows(),
                "{label}: whole-table morsel must be bitwise sequential"
            );
        }
        for pool in pools {
            let par = compiled.run_parallel(bindings, pool, morsel).unwrap();
            assert!(
                par.rows() == anchor.rows() && par.schema() == anchor.schema(),
                "{label}: morsel {morsel} on {} workers differs from the inline \
                 decomposition — thread count leaked into the result",
                pool.workers()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Query-shaped plans (optionally η-wrapped, optionally optimized):
    /// the full worker-count × morsel-size matrix against sequential run().
    #[test]
    fn morsel_execution_matches_sequential_on_query_plans(
        n_facts in 30usize..150,
        n_dims in 4usize..16,
        variant in 0u8..8,
        hashed in 0u8..2,
        optimized in 0u8..2,
        ratio in 0.1f64..0.9,
        seed in 0u64..500,
        data_seed in 0u64..200,
    ) {
        let db = build_db(n_facts, n_dims, data_seed);
        let mut plan = plan_variant(variant);
        if hashed == 1 {
            let derived = stale_view_cleaning::relalg::derive::derive(&plan, &db).unwrap();
            let key: Vec<String> =
                derived.key_names().iter().map(|s| s.to_string()).collect();
            if !key.is_empty() {
                let key_refs: Vec<&str> = key.iter().map(|s| s.as_str()).collect();
                plan = plan.hash(&key_refs, ratio, HashSpec::with_seed(seed));
            }
        }
        if optimized == 1 {
            plan = optimize(&plan, &db).unwrap().0;
        }
        let b = Bindings::from_database(&db);
        let compiled = compile(&plan, &b).unwrap();
        let pools = [WorkerPool::new(1), WorkerPool::new(2), WorkerPool::new(4)];
        assert_matrix(&compiled, &b, &pools, &format!("variant {variant}"));
    }

    /// Maintenance-strategy plans from svc-ivm (signed change tables,
    /// delta-apply, recompute), evaluated under maintenance bindings: the
    /// path `BatchPipeline` and `MaterializedView::maintain` run through.
    #[test]
    fn morsel_execution_matches_sequential_on_maintenance_plans(
        n_facts in 40usize..120,
        n_dims in 4usize..12,
        view_kind in 0u8..3,
        ops in proptest::collection::vec((0u8..3, 0u64..1_000_000), 1..50),
        data_seed in 0u64..200,
    ) {
        let db = build_db(n_facts, n_dims, data_seed);
        let view_def = match view_kind % 3 {
            // Change-table strategy (additive aggregate).
            0 => Plan::scan("fact")
                .join(Plan::scan("dim"), JoinKind::Inner, &[("dimId", "dimId")])
                .aggregate(
                    &["dimId"],
                    vec![
                        AggSpec::count_all("n"),
                        AggSpec::new("avgx", AggFunc::Avg, col("x")),
                    ],
                ),
            // Delta-apply strategy (SPJ view).
            1 => Plan::scan("fact")
                .join(Plan::scan("dim"), JoinKind::Inner, &[("dimId", "dimId")])
                .select(col("weight").gt(lit(0.2))),
            // Recompute strategy (nested aggregate).
            _ => Plan::scan("fact")
                .aggregate(&["dimId"], vec![AggSpec::count_all("c")])
                .aggregate(&["c"], vec![AggSpec::count_all("n")]),
        };
        let view = MaterializedView::create("v", view_def, &db).unwrap();
        let deltas = random_deltas(&db, &ops);
        let (plan, _kind) = view.build_maintenance_plan(&db, &deltas).unwrap();
        let (plan, _) =
            optimize(&plan, &maintenance_bindings(&db, &deltas, view.table())).unwrap();

        let bindings = maintenance_bindings(&db, &deltas, view.table());
        let compiled = compile(&plan, &bindings).unwrap();
        let pools = [WorkerPool::new(1), WorkerPool::new(2), WorkerPool::new(4)];
        assert_matrix(&compiled, &bindings, &pools, &format!("view kind {view_kind}"));
    }

    /// Null-heavy, type-mixed tables through the same matrix: the typed
    /// kernels' validity masks and the `Mixed` column fallback must
    /// survive morsel decomposition — chunk-range boundaries cut through
    /// null runs and type changes without changing a single row.
    #[test]
    fn morsel_execution_matches_sequential_on_mixed_tables(
        n_rows in 40usize..250,
        variant in 0u8..7,
        hashed in 0u8..2,
        ratio in 0.1f64..0.9,
        seed in 0u64..500,
        data_seed in 0u64..200,
    ) {
        let db = build_db_mixed(n_rows, data_seed);
        let mut plan = mixed_plan_variant(variant);
        if hashed == 1 {
            let derived = stale_view_cleaning::relalg::derive::derive(&plan, &db).unwrap();
            let key: Vec<String> =
                derived.key_names().iter().map(|s| s.to_string()).collect();
            if !key.is_empty() {
                let key_refs: Vec<&str> = key.iter().map(|s| s.as_str()).collect();
                plan = plan.hash(&key_refs, ratio, HashSpec::with_seed(seed));
            }
        }
        let b = Bindings::from_database(&db);
        let compiled = compile(&plan, &b).unwrap();
        let pools = [WorkerPool::new(2)];
        assert_matrix(&compiled, &b, &pools, &format!("mixed variant {variant}"));
    }
}

/// Fixed-input determinism: re-running the same parallel configuration is
/// reproducible, and interleaving two concurrent parallel runs on one pool
/// does not change either result.
#[test]
fn parallel_execution_is_reproducible_and_interleaving_safe() {
    let db = build_db(600, 12, 7);
    let plan = Plan::scan("fact")
        .join(Plan::scan("dim"), JoinKind::Inner, &[("dimId", "dimId")])
        .aggregate(
            &["tag"],
            vec![AggSpec::new("sx", AggFunc::Sum, col("x")), AggSpec::count_all("n")],
        );
    let b = Bindings::from_database(&db);
    let compiled = compile(&plan, &b).unwrap();
    let pool = WorkerPool::new(4);

    let once = compiled.run_parallel(&b, &pool, 37).unwrap();
    let again = compiled.run_parallel(&b, &pool, 37).unwrap();
    assert!(once.rows() == again.rows(), "same morsel size must be bit-for-bit reproducible");

    // Two threads hammer the same pool with the same plan: the shared
    // queue interleaves their morsels, results stay bit-identical.
    std::thread::scope(|s| {
        let handles: Vec<_> =
            (0..2).map(|_| s.spawn(|| compiled.run_parallel(&b, &pool, 37).unwrap())).collect();
        for h in handles {
            let out = h.join().unwrap();
            assert!(out.rows() == once.rows(), "interleaved run diverged");
        }
    });
}

/// Zero morsel size is rejected, not looped on.
#[test]
fn zero_morsel_size_is_rejected() {
    let db = build_db(50, 5, 1);
    let b = Bindings::from_database(&db);
    let compiled = compile(&Plan::scan("fact"), &b).unwrap();
    assert!(compiled.run_parallel(&b, &SequentialScheduler, 0).is_err());
}

/// The scheduler trait object is what `ExecMode` carries; make sure the
/// mode dispatches to the parallel path end to end.
#[test]
fn exec_mode_dispatches_to_parallel() {
    use stale_view_cleaning::relalg::exec::ExecMode;
    let db = build_db(200, 8, 3);
    let b = Bindings::from_database(&db);
    let plan = Plan::scan("fact").select(col("x").gt(lit(0.5)));
    let compiled = compile(&plan, &b).unwrap();
    let pool = WorkerPool::new(2);
    let seq = compiled.run_with(&b, ExecMode::sequential()).unwrap();
    let sched: &dyn MorselScheduler = &pool;
    let par = compiled.run_with(&b, ExecMode::morsel(sched, 16)).unwrap();
    assert!(par.rows() == seq.rows());
}
