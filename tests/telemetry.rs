//! Metrics-correctness tests for the observability layer.
//!
//! The executor's metric contract mirrors its morsel-determinism contract:
//! per-node **row counts** (rows in/out, join build/probe split, γ group
//! counts) are functions of the plan and its inputs only — identical
//! across worker counts, schedulers, and vectorized-vs-rowwise modes.
//! Wall times, morsel counts, and chunk/zone counters are allowed to vary;
//! the row-shaped fields are not. Plus the zero-cost gate: running a
//! compiled plan *without* a sink must allocate zero metric state.

use stale_view_cleaning::catalog::Catalog;
use stale_view_cleaning::cluster::executor::WorkerPool;
use stale_view_cleaning::core::{SvcConfig, SvcView};
use stale_view_cleaning::ivm::delta::{del_leaf, ins_leaf};
use stale_view_cleaning::ivm::strategy::STALE_LEAF;
use stale_view_cleaning::ivm::view::maintenance_bindings;
use stale_view_cleaning::relalg::aggregate::{AggFunc, AggSpec};
use stale_view_cleaning::relalg::eval::Bindings;
use stale_view_cleaning::relalg::exec::{compile, explain_analyze, ExecMode, SequentialScheduler};
use stale_view_cleaning::relalg::plan::{JoinKind, Plan};
use stale_view_cleaning::relalg::scalar::{col, lit};
use stale_view_cleaning::storage::{DataType, Database, Deltas, Schema, Table, Value};
use stale_view_cleaning::telemetry::metric_allocs;

/// A star schema with three dimension tables, so the view definition
/// carries three joins and its cleaning plan replicates them in the delta
/// branch.
fn star_db() -> Database {
    let mut db = Database::new();
    let mut fact = Table::new(
        Schema::from_pairs(&[
            ("fid", DataType::Int),
            ("d1", DataType::Int),
            ("d2", DataType::Int),
            ("d3", DataType::Int),
            ("x", DataType::Float),
        ])
        .unwrap(),
        &["fid"],
    )
    .unwrap();
    for i in 0..900i64 {
        fact.insert(vec![
            Value::Int(i),
            Value::Int(i % 17),
            Value::Int(i % 11),
            Value::Int(i % 7),
            Value::Float(0.25 + (i % 13) as f64),
        ])
        .unwrap();
    }
    db.create_table("fact", fact);
    for (name, card) in [("dim1", 17i64), ("dim2", 11), ("dim3", 7)] {
        let key = &name[3..]; // "1" | "2" | "3"
        let kcol = format!("d{key}");
        let vcol = format!("v{key}");
        let mut t = Table::new(
            Schema::from_pairs(&[(kcol.as_str(), DataType::Int), (vcol.as_str(), DataType::Int)])
                .unwrap(),
            &[kcol.as_str()],
        )
        .unwrap();
        for k in 0..card {
            t.insert(vec![Value::Int(k), Value::Int(k * 3 + 1)]).unwrap();
        }
        db.create_table(name, t);
    }
    db
}

fn star_view() -> Plan {
    Plan::scan("fact")
        .join(Plan::scan("dim1"), JoinKind::Inner, &[("d1", "d1")])
        .join(Plan::scan("dim2"), JoinKind::Inner, &[("d2", "d2")])
        .join(Plan::scan("dim3"), JoinKind::Inner, &[("d3", "d3")])
        .aggregate(
            &["d1"],
            vec![AggSpec::count_all("n"), AggSpec::new("sx", AggFunc::Sum, col("x"))],
        )
}

fn fact_inserts(db: &Database, n: i64) -> Deltas {
    let mut deltas = Deltas::new();
    for i in 0..n {
        let s = 10_000 + i;
        deltas
            .insert(
                db,
                "fact",
                vec![
                    Value::Int(s),
                    Value::Int(s % 17),
                    Value::Int(s % 11),
                    Value::Int(s % 7),
                    Value::Float(1.5),
                ],
            )
            .unwrap();
    }
    deltas
}

/// The mode-invariant metric fields of every node, in slot order.
fn row_fields(
    ex: &stale_view_cleaning::relalg::exec::Explain,
) -> Vec<(String, u64, u64, u64, u64, u64)> {
    ex.nodes
        .iter()
        .map(|n| {
            let m = &n.metrics;
            (n.label.clone(), m.rows_in, m.rows_out, m.build_rows, m.probe_rows, m.groups)
        })
        .collect()
}

/// The acceptance scenario: `explain_analyze` on a ≥3-join cleaning plan
/// shows per-node actual rows, wall time, and catalog-estimated rows, and
/// the actual row counts are bit-identical across {1, 4} workers and
/// {rowwise, vectorized} modes.
#[test]
fn explain_analyze_cleaning_plan_is_mode_invariant() {
    let db = star_db();
    let svc = SvcView::create("v", star_view(), &db, SvcConfig::with_ratio(0.3)).unwrap();
    let deltas = fact_inserts(&db, 300);
    let catalog = Catalog::build(&db);

    let (plan, report, _kind) = svc.cleaning_plan_with(&db, &deltas, Some(&catalog)).unwrap();
    let stale_binding = if report.fully_pushed() { svc.stale_sample() } else { svc.view.table() };
    let mb = maintenance_bindings(&db, &deltas, stale_binding);

    // The same leaf overlay the optimizer used, rebuilt for the explain's
    // estimated-rows column.
    let mut scoped = catalog.scoped();
    scoped.bind_table(STALE_LEAF, stale_binding);
    for (name, set) in deltas.iter() {
        scoped.bind_table(ins_leaf(name), &set.insertions);
        scoped.bind_table(del_leaf(name), &set.deletions);
    }
    let est = scoped.estimator();

    let baseline = explain_analyze(&plan, &mb, Some(&est), ExecMode::sequential()).unwrap();

    let joins = baseline.nodes.iter().filter(|n| n.label.starts_with("join:")).count();
    assert!(joins >= 3, "cleaning plan must carry ≥3 joins, found {joins}:\n{baseline}");
    assert_eq!(
        baseline.root().metrics.rows_out as usize,
        baseline.table.len(),
        "root rows_out must equal the result length"
    );
    assert!(baseline.root().metrics.wall_ns > 0, "root wall time must be recorded");
    assert!(
        baseline.nodes.iter().any(|n| n.est_rows.is_some()),
        "catalog estimates must annotate at least one node:\n{baseline}"
    );
    let rendered = baseline.render();
    assert!(rendered.contains("rows=") && rendered.contains("(est "), "{rendered}");

    let base_rows = row_fields(&baseline);
    let pool1 = WorkerPool::new(1);
    let pool4 = WorkerPool::new(4);
    let modes: Vec<(&str, ExecMode<'_>)> = vec![
        ("sequential rowwise", ExecMode::sequential().rowwise()),
        ("1 worker vectorized", ExecMode::morsel(&pool1, 64)),
        ("4 workers vectorized", ExecMode::morsel(&pool4, 64)),
        ("4 workers rowwise", ExecMode::morsel(&pool4, 64).rowwise()),
    ];
    for (label, mode) in modes {
        let ex = explain_analyze(&plan, &mb, Some(&est), mode).unwrap();
        assert_eq!(
            row_fields(&ex),
            base_rows,
            "{label}: per-node row counts diverged from sequential"
        );
        assert_eq!(ex.table.len(), baseline.table.len(), "{label}: result length diverged");
    }
}

/// Exact catalog stats make leaf estimates exact: a bare scan's estimated
/// rows must equal its actual rows, and the estimate column must degrade
/// to `None` (never to a wrong number) when no estimator is supplied.
#[test]
fn estimates_are_consistent_with_actuals_on_exact_stats() {
    let db = star_db();
    let catalog = Catalog::build(&db);
    let est = catalog.estimator();
    let bindings = Bindings::from_database(&db);

    let scan = Plan::scan("fact");
    let ex = explain_analyze(&scan, &bindings, Some(&est), ExecMode::sequential()).unwrap();
    let root = ex.root();
    assert_eq!(root.metrics.rows_out as usize, ex.table.len());
    let e = root.est_rows.expect("scan estimate present");
    assert!(
        (e - root.metrics.rows_out as f64).abs() < 1e-6,
        "exact stats must estimate a bare scan exactly: est {e} vs actual {}",
        root.metrics.rows_out
    );

    // A filtered scan: the estimate exists and stays within the input
    // cardinality; the actual survivor count is exact by construction.
    let filtered = Plan::scan("fact").select(col("d1").lt(lit(5i64)));
    let ex = explain_analyze(&filtered, &bindings, Some(&est), ExecMode::sequential()).unwrap();
    let root = ex.root();
    assert_eq!(root.metrics.rows_out as usize, ex.table.len());
    assert!(root.metrics.rows_out < root.metrics.rows_in);
    let e = root.est_rows.expect("filter estimate present");
    assert!(e > 0.0 && e <= root.metrics.rows_in as f64, "filter estimate {e} out of range");

    // No estimator: actuals intact, estimates absent.
    let ex = explain_analyze(&filtered, &bindings, None, ExecMode::sequential()).unwrap();
    assert!(ex.nodes.iter().all(|n| n.est_rows.is_none()));
    assert_eq!(ex.root().metrics.rows_out as usize, ex.table.len());
}

/// The zero-cost gate: running a compiled plan without a sink must perform
/// no metric-state allocation (counter-verified, same design as
/// `Table::clone_count`), while building a sink registers exactly one.
#[test]
fn uninstrumented_runs_allocate_no_metric_state() {
    let db = star_db();
    let bindings = Bindings::from_database(&db);
    let plan = star_view();
    let compiled = compile(&plan, &bindings).unwrap();

    let before = metric_allocs();
    compiled.run(&bindings).unwrap();
    compiled.run_rowwise(&bindings).unwrap();
    compiled.run_parallel(&bindings, &SequentialScheduler, 64).unwrap();
    assert_eq!(
        metric_allocs(),
        before,
        "uninstrumented executor paths must allocate zero metric state"
    );

    let sink = compiled.metrics_sink();
    assert_eq!(metric_allocs(), before + 1, "a sink is one audited allocation");
    let out = compiled.run_with_metrics(&bindings, ExecMode::sequential(), &sink).unwrap();
    assert_eq!(metric_allocs(), before + 1, "the metered run itself allocates nothing further");
    assert_eq!(sink.snapshot(0).rows_out as usize, out.len());
}
