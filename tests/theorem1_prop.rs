//! Property test for Theorem 1: the hash push-down rewrite materializes the
//! *identical* sample, for randomized data and randomized plan shapes.

use proptest::prelude::*;

use stale_view_cleaning::relalg::aggregate::{AggFunc, AggSpec};
use stale_view_cleaning::relalg::eval::{evaluate, Bindings};
use stale_view_cleaning::relalg::plan::{JoinKind, Plan};
use stale_view_cleaning::relalg::scalar::{col, lit};
use stale_view_cleaning::sampling::push_down;
use stale_view_cleaning::storage::{DataType, Database, HashSpec, Schema, Table, Value};

fn build_db(facts: &[(i64, i64, f64)], dims: &[(i64, f64)]) -> Database {
    let mut db = Database::new();
    let mut dim = Table::new(
        Schema::from_pairs(&[("dimId", DataType::Int), ("weight", DataType::Float)]).unwrap(),
        &["dimId"],
    )
    .unwrap();
    for &(id, w) in dims {
        dim.insert(vec![Value::Int(id), Value::Float(w)]).unwrap();
    }
    let mut fact = Table::new(
        Schema::from_pairs(&[
            ("factId", DataType::Int),
            ("dimId", DataType::Int),
            ("x", DataType::Float),
        ])
        .unwrap(),
        &["factId"],
    )
    .unwrap();
    for &(id, d, x) in facts {
        fact.insert(vec![Value::Int(id), Value::Int(d), Value::Float(x)]).unwrap();
    }
    db.create_table("dim", dim);
    db.create_table("fact", fact);
    db
}

/// The plan shapes exercised: σ, Π, FK join, equality join + γ, ∪, −.
fn plan_variant(variant: u8) -> (Plan, Vec<&'static str>) {
    match variant % 6 {
        0 => (Plan::scan("fact").select(col("x").gt(lit(0.3))), vec!["factId"]),
        1 => (
            Plan::scan("fact")
                .project(vec![("factId", col("factId")), ("x2", col("x").mul(lit(2.0)))]),
            vec!["factId"],
        ),
        2 => (
            Plan::scan("fact").join(Plan::scan("dim"), JoinKind::Inner, &[("dimId", "dimId")]),
            vec!["factId"],
        ),
        3 => (
            Plan::scan("fact")
                .join(Plan::scan("dim"), JoinKind::Inner, &[("dimId", "dimId")])
                .aggregate(
                    &["dimId"],
                    vec![AggSpec::count_all("n"), AggSpec::new("sx", AggFunc::Sum, col("x"))],
                ),
            vec!["dimId"],
        ),
        4 => (
            Plan::scan("fact")
                .select(col("x").lt(lit(0.5)))
                .union(Plan::scan("fact").select(col("x").ge(lit(0.4)))),
            vec!["factId"],
        ),
        _ => (
            Plan::scan("fact")
                .select(col("dimId").lt(lit(8i64)))
                .difference(Plan::scan("fact").select(col("x").gt(lit(0.8)))),
            vec!["factId"],
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pushdown_materializes_identical_samples(
        n_facts in 20usize..120,
        n_dims in 3usize..15,
        variant in 0u8..6,
        ratio in 0.05f64..0.9,
        seed in 0u64..1000,
        data_seed in 0u64..100,
    ) {
        // Deterministic pseudo-random data from data_seed.
        let mut s = data_seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17; s
        };
        let dims: Vec<(i64, f64)> =
            (0..n_dims).map(|i| (i as i64, (next() % 100) as f64 / 100.0)).collect();
        let facts: Vec<(i64, i64, f64)> = (0..n_facts)
            .map(|i| {
                (
                    i as i64,
                    (next() % n_dims as u64) as i64,
                    (next() % 1000) as f64 / 1000.0,
                )
            })
            .collect();
        let db = build_db(&facts, &dims);

        let (plan, key) = plan_variant(variant);
        let hashed = plan.hash(&key, ratio, HashSpec::with_seed(seed));

        let b = Bindings::from_database(&db);
        let unpushed = evaluate(&hashed, &b).unwrap();
        let (optimized, _report) = push_down(&hashed, &db).unwrap();
        let pushed = evaluate(&optimized, &b).unwrap();

        prop_assert!(
            pushed.same_contents(&unpushed),
            "variant {} ratio {} seed {}: {} vs {} rows",
            variant, ratio, seed, pushed.len(), unpushed.len()
        );
    }
}
