//! The partition/skew equivalence harness for partitioned parallel hash
//! joins (and partitioned set-op dedup): for randomized query and
//! maintenance plans — including adversarial join-key distributions (Zipf
//! skew, all-rows-one-key, null-heavy keys, hash-collision-prone values)
//! — execution across the full matrix of partition counts {1, 2, 4, 8} ×
//! worker counts {1, 2, 4} × {rowwise, vectorized} must agree with the
//! sequential `run()` row for row and in output order, and must be
//! **bit-identical** across partition counts, worker counts, and kernel
//! paths for a fixed morsel size. Partitioning a chain map by key hash
//! cannot change which rows a probe key finds or their order, so — unlike
//! the float-rounding caveat morsel decomposition carries at γ barriers —
//! the partition axis has no tolerance at all.
//!
//! Plus the `emit_unmatched_right` barrier regression: the correct
//! merge (union every probe chunk's matched list before emitting
//! unmatched right rows) is exact under partitioning, and a deliberately
//! broken merge that drops one chunk's matched list is *detected* —
//! proving the harness can actually see a wrong merge.

use proptest::prelude::*;

mod generators;
use generators::{
    adversarial_plan_variant, build_db, build_db_adversarial, plan_variant, random_deltas,
};

use stale_view_cleaning::cluster::executor::WorkerPool;
use stale_view_cleaning::ivm::view::{maintenance_bindings, MaterializedView};
use stale_view_cleaning::relalg::aggregate::{AggFunc, AggSpec};
use stale_view_cleaning::relalg::eval::Bindings;
use stale_view_cleaning::relalg::exec::{compile, ExecMode, PhysicalPlan, SequentialScheduler};
use stale_view_cleaning::relalg::join::JoinBuild;
use stale_view_cleaning::relalg::optimizer::optimize;
use stale_view_cleaning::relalg::plan::{JoinKind, Plan};
use stale_view_cleaning::relalg::scalar::col;
use stale_view_cleaning::storage::{Row, Table, Value};

/// The partition axis of the matrix (1 = a single map, the pre-partition
/// behavior; 8 exceeds the worker counts so partitions outnumber threads).
const PARTITIONS: [usize; 4] = [1, 2, 4, 8];

/// Row-for-row, in-order comparison with float tolerance — the sequential
/// oracle check (γ partial sums combine at morsel barriers, so float
/// aggregates may differ in low bits from the sequential fold order).
fn approx_same_rows_in_order(a: &Table, b: &Table, eps: f64) -> bool {
    fn value_close(x: &Value, y: &Value, eps: f64) -> bool {
        match (x.as_f64(), y.as_f64()) {
            (Some(p), Some(q)) => {
                let scale = p.abs().max(q.abs()).max(1.0);
                (p - q).abs() <= eps * scale
            }
            _ => x == y,
        }
    }
    a.schema() == b.schema()
        && a.key() == b.key()
        && a.len() == b.len()
        && a.rows()
            .iter()
            .zip(b.rows())
            .all(|(ra, rb)| ra.iter().zip(rb).all(|(x, y)| value_close(x, y, eps)))
}

/// Assert the full partition matrix for one compiled plan: sequential
/// `run()` as the oracle; for each morsel size, the 1-partition inline
/// decomposition anchors, and every partition count × worker count ×
/// kernel path must reproduce the anchor **bit for bit**.
fn assert_partition_matrix(
    compiled: &PhysicalPlan,
    bindings: &Bindings<'_>,
    pools: &[WorkerPool],
    label: &str,
) {
    let sequential = compiled.run(bindings).unwrap();
    for morsel in [5usize, 64] {
        let anchor = compiled
            .run_with(bindings, ExecMode::morsel(&SequentialScheduler, morsel).partitions(1))
            .unwrap();
        assert!(
            approx_same_rows_in_order(&anchor, &sequential, 1e-9),
            "{label}: morsel {morsel} single-partition run diverged from sequential \
             ({} vs {} rows)",
            anchor.len(),
            sequential.len()
        );
        for &parts in &PARTITIONS {
            let mode = ExecMode::morsel(&SequentialScheduler, morsel).partitions(parts);
            let inline = compiled.run_with(bindings, mode).unwrap();
            assert!(
                inline.rows() == anchor.rows() && inline.schema() == anchor.schema(),
                "{label}: morsel {morsel}, {parts} partitions diverged from the \
                 1-partition anchor — partition count leaked into the result"
            );
            let inline_rw = compiled.run_with(bindings, mode.rowwise()).unwrap();
            assert!(
                inline_rw.rows() == anchor.rows(),
                "{label}: morsel {morsel}, {parts} partitions rowwise diverged from \
                 vectorized"
            );
            for pool in pools {
                let par = compiled
                    .run_with(bindings, ExecMode::morsel(pool, morsel).partitions(parts))
                    .unwrap();
                assert!(
                    par.rows() == anchor.rows(),
                    "{label}: morsel {morsel}, {parts} partitions on {} workers differs \
                     from the inline decomposition — thread count leaked into the result",
                    pool.workers()
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Adversarial join-key distributions through the full matrix: skew
    /// concentrates entire build sides into single partitions, null-heavy
    /// keys exercise the null-skip on both hash twins, and collision-prone
    /// keys defeat partition balancing entirely — none of which may change
    /// a single output row.
    #[test]
    fn partitioned_execution_matches_sequential_on_adversarial_keys(
        n_facts in 30usize..150,
        skew in 0u8..4,
        variant in 0u8..8,
        data_seed in 0u64..200,
    ) {
        let db = build_db_adversarial(n_facts, skew, data_seed);
        let plan = adversarial_plan_variant(variant);
        let b = Bindings::from_database(&db);
        let compiled = compile(&plan, &b).unwrap();
        let pools = [WorkerPool::new(1), WorkerPool::new(2), WorkerPool::new(4)];
        assert_partition_matrix(&compiled, &b, &pools, &format!("skew {skew} variant {variant}"));
    }

    /// The regular query-plan space (same generators as `morsel_prop`):
    /// partition counts ride every operator shape the executor lowers.
    #[test]
    fn partitioned_execution_matches_sequential_on_query_plans(
        n_facts in 30usize..150,
        n_dims in 4usize..16,
        variant in 0u8..8,
        optimized in 0u8..2,
        data_seed in 0u64..200,
    ) {
        let db = build_db(n_facts, n_dims, data_seed);
        let mut plan = plan_variant(variant);
        if optimized == 1 {
            plan = optimize(&plan, &db).unwrap().0;
        }
        let b = Bindings::from_database(&db);
        let compiled = compile(&plan, &b).unwrap();
        let pools = [WorkerPool::new(2), WorkerPool::new(4)];
        assert_partition_matrix(&compiled, &b, &pools, &format!("variant {variant}"));
    }

    /// Maintenance-strategy plans under maintenance bindings — the exact
    /// path `BatchPipeline::join_partitions` drives in production.
    #[test]
    fn partitioned_execution_matches_sequential_on_maintenance_plans(
        n_facts in 40usize..120,
        n_dims in 4usize..12,
        view_kind in 0u8..2,
        ops in proptest::collection::vec((0u8..3, 0u64..1_000_000), 1..40),
        data_seed in 0u64..200,
    ) {
        let db = build_db(n_facts, n_dims, data_seed);
        let view_def = match view_kind % 2 {
            0 => Plan::scan("fact")
                .join(Plan::scan("dim"), JoinKind::Inner, &[("dimId", "dimId")])
                .aggregate(
                    &["dimId"],
                    vec![
                        AggSpec::count_all("n"),
                        AggSpec::new("avgx", AggFunc::Avg, col("x")),
                    ],
                ),
            _ => Plan::scan("fact")
                .aggregate(&["dimId"], vec![AggSpec::count_all("c")])
                .aggregate(&["c"], vec![AggSpec::count_all("n")]),
        };
        let view = MaterializedView::create("v", view_def, &db).unwrap();
        let deltas = random_deltas(&db, &ops);
        let (plan, _kind) = view.build_maintenance_plan(&db, &deltas).unwrap();
        let (plan, _) =
            optimize(&plan, &maintenance_bindings(&db, &deltas, view.table())).unwrap();
        let bindings = maintenance_bindings(&db, &deltas, view.table());
        let compiled = compile(&plan, &bindings).unwrap();
        let pools = [WorkerPool::new(2), WorkerPool::new(4)];
        assert_partition_matrix(
            &compiled, &bindings, &pools, &format!("view kind {view_kind}"),
        );
    }
}

/// Chunked right-outer probe over a partitioned build: rows keyed so each
/// probe chunk matches a *disjoint* slice of the right side — dropping any
/// one chunk's matched list is guaranteed to change the output.
fn outer_probe_fixture() -> (Vec<Row>, Vec<Row>) {
    // Right: keys 0..16, two rows each. Left: 64 rows, key i/4 — probe
    // chunk c (16 rows) matches exactly right keys 4c..4c+4.
    let rrows: Vec<Row> =
        (0..32i64).map(|i| vec![Value::Int(i % 16), Value::Int(1_000 + i)]).collect();
    let lrows: Vec<Row> = (0..64i64).map(|i| vec![Value::Int(i / 4), Value::Int(i)]).collect();
    (lrows, rrows)
}

/// Satellite regression: the `emit_unmatched_right` barrier stays exact
/// under partitioning — the chunked probe with a correct matched-list
/// union reproduces the unchunked single-map join bit for bit, for every
/// partition count — verified *failing* against a deliberately broken
/// merge that drops one chunk's matched list (which must produce spurious
/// null-padded right rows, not silently pass).
#[test]
fn unmatched_right_barrier_is_exact_and_a_broken_merge_is_detected() {
    let (lrows, rrows) = outer_probe_fixture();
    let on: &[(usize, usize)] = &[(0, 0)];
    let (left_cols, pad_left, pad_right) = (&[0usize][..], 2usize, 2usize);

    // Reference: single map, whole left in one probe.
    let reference = {
        let build = JoinBuild::new(&rrows, on);
        let mut out = Vec::new();
        let mut matched = Vec::new();
        build.probe(
            &mut lrows.clone(),
            JoinKind::Right,
            left_cols,
            pad_right,
            &mut out,
            &mut matched,
        );
        build.emit_unmatched_right(&matched, pad_left, &mut out);
        out
    };
    assert_eq!(reference.len(), 128, "fixture: every left row matches 2 right rows");

    for parts in [1usize, 2, 8] {
        let build = JoinBuild::with_partitions(&rrows, on, parts);
        let chunks: Vec<Vec<Row>> = lrows.chunks(16).map(<[Row]>::to_vec).collect();

        // Correct merge: concatenate chunk outputs in chunk order, union
        // every chunk's matched list, emit unmatched right at the barrier.
        let mut out = Vec::new();
        let mut matched: Vec<u32> = Vec::new();
        for chunk in &chunks {
            let mut hit = Vec::new();
            build.probe(
                &mut chunk.clone(),
                JoinKind::Right,
                left_cols,
                pad_right,
                &mut out,
                &mut hit,
            );
            matched.extend(hit);
        }
        build.emit_unmatched_right(&matched, pad_left, &mut out);
        assert_eq!(out, reference, "{parts} partitions: correct merge must be exact");

        // Broken merge: drop chunk 2's matched list before the barrier.
        // Its right rows (keys 8..12) now wrongly emit as unmatched.
        let mut broken = Vec::new();
        let mut partial: Vec<u32> = Vec::new();
        for (c, chunk) in chunks.iter().enumerate() {
            let mut hit = Vec::new();
            build.probe(
                &mut chunk.clone(),
                JoinKind::Right,
                left_cols,
                pad_right,
                &mut broken,
                &mut hit,
            );
            if c != 2 {
                partial.extend(hit);
            }
        }
        build.emit_unmatched_right(&partial, pad_left, &mut broken);
        assert_ne!(
            broken, reference,
            "{parts} partitions: dropping a chunk's matched list must be detectable"
        );
        assert_eq!(
            broken.len(),
            reference.len() + 8,
            "{parts} partitions: the broken merge must emit exactly chunk 2's 8 right \
             rows as spurious unmatched"
        );
    }
}

/// Skew telemetry sanity on the worst case: all rows one key puts the
/// entire keyed build side into a single partition, and the partitioned
/// probe still reproduces the single-map join exactly.
#[test]
fn all_rows_one_key_lands_in_one_partition_without_changing_results() {
    let db = build_db_adversarial(200, 1, 9);
    let fact = db.table("fact").unwrap();
    let build = JoinBuild::with_partitions(fact.rows(), &[(0, 1)], 8);
    let sizes = build.partition_sizes();
    assert_eq!(sizes.iter().sum::<usize>(), 200, "every keyed row lands somewhere");
    assert_eq!(build.max_partition_rows(), 200, "one-key skew concentrates one partition");
    assert_eq!(sizes.iter().filter(|&&s| s > 0).count(), 1);

    let plan = adversarial_plan_variant(0);
    let b = Bindings::from_database(&db);
    let compiled = compile(&plan, &b).unwrap();
    let pools = [WorkerPool::new(4)];
    assert_partition_matrix(&compiled, &b, &pools, "one-key skew");
}
