//! End-to-end integration: the full SVC pipeline over the TPCD workload,
//! crossing every crate (storage → relalg → ivm → sampling → core →
//! workloads).

use stale_view_cleaning::core::{query::relative_error, AggQuery, Method, SvcConfig, SvcView};
use stale_view_cleaning::relalg::scalar::{col, lit};
use stale_view_cleaning::sampling::check_correspondence;
use stale_view_cleaning::workloads::tpcd::{TpcdConfig, TpcdData};
use stale_view_cleaning::workloads::tpcd_views::{complex_views, join_view, revenue_expr};

fn data() -> TpcdData {
    TpcdData::generate(TpcdConfig { scale: 0.05, skew: 2.0, seed: 1234 }).unwrap()
}

#[test]
fn cleaned_sample_is_exact_subset_of_fresh_view() {
    let data = data();
    let deltas = data.updates(0.15, 3).unwrap();
    for v in complex_views().into_iter().filter(|v| !v.blocked) {
        let svc =
            SvcView::create(v.id, v.plan.clone(), &data.db, SvcConfig::with_ratio(0.2)).unwrap();
        let cleaned = svc.clean_sample(&data.db, &deltas).unwrap();
        let fresh = svc.view.recompute_fresh(&data.db, &deltas).unwrap();
        for (k, row) in cleaned.canonical.iter_keyed() {
            let f = fresh.get(&k).unwrap_or_else(|| panic!("{}: key {k} not in fresh", v.id));
            for (a, b) in row.iter().zip(f) {
                match (a.as_f64(), b.as_f64()) {
                    (Some(x), Some(y)) => assert!(
                        (x - y).abs() <= 1e-9 * x.abs().max(y.abs()).max(1.0),
                        "{}: {k} {x} vs {y}",
                        v.id
                    ),
                    _ => assert_eq!(a, b, "{}: {k}", v.id),
                }
            }
        }
    }
}

#[test]
fn correspondence_property_holds_for_join_view() {
    let data = data();
    let deltas = data.updates(0.1, 5).unwrap();
    let svc = SvcView::create("jv", join_view(), &data.db, SvcConfig::with_ratio(0.15)).unwrap();
    let cleaned = svc.clean_sample(&data.db, &deltas).unwrap();
    let fresh = svc.view.recompute_fresh(&data.db, &deltas).unwrap();
    let violations = check_correspondence(
        svc.stale_sample(),
        &cleaned.canonical,
        svc.view.table(),
        &fresh,
        svc.config.ratio,
        svc.config.hash_spec(),
    );
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn estimates_beat_stale_baseline_on_aggregates() {
    let data = data();
    let deltas = data.updates(0.2, 9).unwrap();
    let svc = SvcView::create("jv", join_view(), &data.db, SvcConfig::with_ratio(0.15)).unwrap();
    let q = AggQuery::sum(revenue_expr()).filter(col("o_orderdate").lt(lit(2000i64)));
    let truth = svc.query_fresh_oracle(&data.db, &deltas, &q).unwrap();
    let stale = relative_error(svc.query_stale(&q).unwrap(), truth);
    let corr = svc.answer(&data.db, &deltas, &q, Method::Correction).unwrap();
    let aqp = svc.answer(&data.db, &deltas, &q, Method::AqpDirect).unwrap();
    assert!(relative_error(corr.value, truth) < stale);
    assert!(relative_error(aqp.value, truth) < stale);
    // The truth lies within a few standard errors of the correction (a
    // single 95% interval is allowed to miss; 3x its half-width is not).
    let ci = corr.ci.unwrap();
    assert!(
        (corr.value - truth).abs() <= 3.0 * ci.half_width.max(1e-9),
        "corr {} vs truth {truth}, half-width {}",
        corr.value,
        ci.half_width
    );
}

#[test]
fn full_maintenance_then_queries_are_exact() {
    let data = data();
    let deltas = data.updates(0.1, 2).unwrap();
    let mut svc = SvcView::create("jv", join_view(), &data.db, SvcConfig::with_ratio(0.1)).unwrap();
    let q = AggQuery::count();
    let truth = svc.query_fresh_oracle(&data.db, &deltas, &q).unwrap();
    svc.maintain_full(&data.db, &deltas).unwrap();
    assert_eq!(svc.query_stale(&q).unwrap(), truth);
}

#[test]
fn blocked_views_still_produce_correct_samples() {
    // V21 / V22: push-down blocked, cleaning falls back to evaluating more
    // of the plan — but the sample must still be exact.
    let data = data();
    let deltas = data.updates(0.1, 4).unwrap();
    for v in complex_views().into_iter().filter(|v| v.blocked) {
        let svc =
            SvcView::create(v.id, v.plan.clone(), &data.db, SvcConfig::with_ratio(0.25)).unwrap();
        let cleaned = svc.clean_sample(&data.db, &deltas).unwrap();
        assert!(!cleaned.report.fully_pushed(), "{} should be blocked", v.id);
        let fresh = svc.view.recompute_fresh(&data.db, &deltas).unwrap();
        for (k, row) in cleaned.canonical.iter_keyed() {
            assert_eq!(fresh.get(&k), Some(row), "{}: {k}", v.id);
        }
    }
}

#[test]
fn sampling_ratio_controls_accuracy_cost_tradeoff() {
    let data = data();
    let deltas = data.updates(0.1, 8).unwrap();
    let q = AggQuery::avg(revenue_expr());
    let mut widths = Vec::new();
    for m in [0.05, 0.2, 0.5] {
        let svc = SvcView::create("jv", join_view(), &data.db, SvcConfig::with_ratio(m)).unwrap();
        let cleaned = svc.clean_sample(&data.db, &deltas).unwrap();
        let est = svc.estimate_aqp(&cleaned, &q).unwrap();
        widths.push(est.ci.unwrap().half_width);
    }
    assert!(widths[0] > widths[2], "CI width must shrink as m grows: {widths:?}");
}
