//! Property test: change-table / delta-apply maintenance agrees with full
//! recomputation for randomized insert/update/delete workloads.

use proptest::prelude::*;

use stale_view_cleaning::ivm::view::MaterializedView;
use stale_view_cleaning::relalg::aggregate::{AggFunc, AggSpec};
use stale_view_cleaning::relalg::plan::{JoinKind, Plan};
use stale_view_cleaning::relalg::scalar::{col, lit};
use stale_view_cleaning::storage::{DataType, Database, Deltas, Schema, Table, Value};

fn video_db(n_videos: usize, n_sessions: usize, seed: u64) -> Database {
    let mut s = seed.wrapping_mul(0x2545F4914F6CDD1D) | 1;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    let mut db = Database::new();
    let mut video = Table::new(
        Schema::from_pairs(&[("videoId", DataType::Int), ("duration", DataType::Float)]).unwrap(),
        &["videoId"],
    )
    .unwrap();
    for v in 0..n_videos as i64 {
        video.insert(vec![Value::Int(v), Value::Float((next() % 300) as f64 / 100.0)]).unwrap();
    }
    let mut log = Table::new(
        Schema::from_pairs(&[("sessionId", DataType::Int), ("videoId", DataType::Int)]).unwrap(),
        &["sessionId"],
    )
    .unwrap();
    for s_id in 0..n_sessions as i64 {
        log.insert(vec![Value::Int(s_id), Value::Int((next() % n_videos as u64) as i64)]).unwrap();
    }
    db.create_table("video", video);
    db.create_table("log", log);
    db
}

fn random_deltas(db: &Database, ops: &[(u8, u64)]) -> Deltas {
    let mut deltas = Deltas::new();
    let n_sessions = db.table("log").unwrap().len() as i64;
    let n_videos = db.table("video").unwrap().len() as i64;
    let mut next_session = 1_000_000i64;
    for &(op, r) in ops {
        match op % 3 {
            0 => {
                // insert a new session
                deltas
                    .insert(
                        db,
                        "log",
                        vec![Value::Int(next_session), Value::Int((r % n_videos as u64) as i64)],
                    )
                    .unwrap();
                next_session += 1;
            }
            1 => {
                // delete an existing session (if not already deleted)
                let sid = (r % n_sessions as u64) as i64;
                let _ = deltas.delete(db, "log", &vec![Value::Int(sid), Value::Null]);
            }
            _ => {
                // update an existing session to a different video
                let sid = (r % n_sessions as u64) as i64;
                let vid = ((r / 7) % n_videos as u64) as i64;
                let _ = deltas.update(db, "log", vec![Value::Int(sid), Value::Int(vid)]);
            }
        }
    }
    deltas
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn change_table_agrees_with_recompute(
        seed in 0u64..500,
        ops in proptest::collection::vec((0u8..3, 0u64..1_000_000), 1..60),
    ) {
        let db = video_db(25, 300, seed);
        let view_def = Plan::scan("log")
            .join(Plan::scan("video"), JoinKind::Inner, &[("videoId", "videoId")])
            .aggregate(
                &["videoId"],
                vec![
                    AggSpec::count_all("visits"),
                    AggSpec::new("avgDur", AggFunc::Avg, col("duration")),
                ],
            );
        let mut view = MaterializedView::create("v", view_def, &db).unwrap();
        let deltas = random_deltas(&db, &ops);
        let expected = view.recompute_fresh(&db, &deltas).unwrap();
        view.maintain(&db, &deltas).unwrap();
        prop_assert!(
            view.table().approx_same_contents(&expected, 1e-9),
            "IVM diverged: {} vs {} rows",
            view.len(),
            expected.len()
        );
    }

    #[test]
    fn spj_delta_apply_agrees_with_recompute(
        seed in 0u64..500,
        ops in proptest::collection::vec((0u8..3, 0u64..1_000_000), 1..40),
    ) {
        let db = video_db(20, 200, seed);
        let view_def = Plan::scan("log")
            .join(Plan::scan("video"), JoinKind::Inner, &[("videoId", "videoId")])
            .select(col("duration").gt(lit(1.0)));
        let mut view = MaterializedView::create("v", view_def, &db).unwrap();
        let deltas = random_deltas(&db, &ops);
        let expected = view.recompute_fresh(&db, &deltas).unwrap();
        view.maintain(&db, &deltas).unwrap();
        prop_assert!(view.table().same_contents(&expected));
    }
}
